"""Cohort fast path for :class:`~repro.machines.ConventionalMachine`.

Compiles serial steps and homogeneous parallel regions into the
segment form of :mod:`repro.des.batch` and executes them without DES
processes:

* A serial step is a single job alone on each server, so its timeline
  is closed-form: the same ``t += demand / rate`` chain the DES event
  arithmetic performs, reproduced operation for operation.

* An eligible region (all thread programs structurally identical; see
  :mod:`repro.workload.cohort`) runs on a :class:`CohortEngine` with
  two servers -- the cpu pool and the memory bus -- plus the region's
  FIFO locks.  Work-queue regions compile each item once and share the
  FIFO, mirroring the DES worker loop.

Regions are routed back to the DES path when thread programs are
heterogeneous, or when ``exploit_fine_grained`` is set and a phase
carries internal parallelism (the sw-thread spawning path interleaves
parent-side submissions that the cohort compiler does not model).
"""

from __future__ import annotations

from collections import deque
from typing import Union

from repro.des.batch import ACQ, REL, SLEEP, SRV, CohortEngine, serve_alone
from repro.machines.locality import miss_traffic_bytes
from repro.obs.metrics import lock_summary_from_engine
from repro.workload.cohort import region_cohort_signature, region_phases
from repro.workload.phase import Phase
from repro.workload.task import (
    Critical,
    ParallelRegion,
    WorkQueueRegion,
)

__all__ = ["region_eligible", "run_serial_phase", "run_region"]

#: server ids used by the compiled segments
CPU = 0
BUS = 1


def region_eligible(machine,
                    step: Union[ParallelRegion, WorkQueueRegion]) -> bool:
    """Whether the cohort engine can replay this region exactly."""
    if isinstance(step, ParallelRegion):
        if region_cohort_signature(step) is None:
            return False
    elif not isinstance(step, WorkQueueRegion):
        return False
    if machine.exploit_fine_grained:
        # the sw-thread path submits parent-side creation jobs inside
        # _run_phase; keep those regions on the DES path
        if any(p.parallelism > 1 for p in region_phases(step)):
            return False
    return True


def run_serial_phase(machine, phase: Phase, t: float, cpu, bus) -> float:
    """Closed form of ``ConventionalMachine._run_phase`` on idle servers.

    Bit-identical to the DES event chain for a lone thread: each slice
    completes at ``t + demand / min(cap, capacity)``.
    """
    spec = machine.spec
    clock = spec.core.clock_hz
    cap = clock
    if phase.parallelism > 1 and machine.exploit_fine_grained:
        sw = spec.costs_for("sw")
        create = phase.parallelism * sw.create_cycles
        if create > 0:
            t = serve_alone(cpu, create, clock, t)
        cap = min(phase.parallelism, spec.n_cpus) * clock
    slices = machine.slices_per_phase
    cc = spec.core.compute_cycles(phase.ops) / slices
    tb = miss_traffic_bytes(phase, spec.cache) / slices
    bus_cap = spec.per_cpu_mem_bandwidth
    for _ in range(slices):
        if cc > 0:
            t = serve_alone(cpu, cc, cap, t)
        if tb > 0:
            t = serve_alone(bus, tb, bus_cap, t)
    if phase.serial_cycles > 0:
        t = t + phase.serial_cycles / clock
    return t


def run_region(machine, step: Union[ParallelRegion, WorkQueueRegion],
               t: float, cpu, bus) -> tuple[float, dict, dict]:
    """Execute an eligible region; returns (end, lock_summary, stats).

    The lock summary is the dict shape of
    :func:`repro.obs.metrics.lock_summary_from_engine` (waits,
    wait_time, convoy_max, hist); ``stats`` is the engine's
    per-region choice accounting (closed-form vs event-stepped).
    Credits the live servers' busy-time/served-work statistics so the
    final utilization numbers match the DES path.
    """
    spec = machine.spec
    clock = spec.core.clock_hz
    costs = spec.costs_for(step.thread_kind)
    # the parent creates every thread before any runs
    create = costs.create_cycles * step.n_threads
    if create > 0:
        t = serve_alone(cpu, create, clock, t)

    queue = None
    if isinstance(step, ParallelRegion):
        programs = [
            _compile_items(machine, th.items, costs, prefix=None)
            for th in step.threads
        ]
    else:
        sync = costs.sync_cycles
        # popping the shared queue is a synchronized operation
        prefix = [(SRV, CPU, sync, clock)] if sync > 0 else []
        queue = deque(
            _compile_items(machine, item.items, costs, prefix=prefix)
            for item in step.items
        )
        programs = [[] for _ in range(step.n_threads)]

    eng = CohortEngine(t, (cpu.capacity, bus.capacity), programs,
                       queue=queue)
    end = eng.run()
    for server, batch in ((cpu, eng.servers[CPU]), (bus, eng.servers[BUS])):
        server.busy_time += batch.busy_time
        server.total_served += batch.total_served
    return end, lock_summary_from_engine(eng), eng.stats


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def _compile_items(machine, items, costs, prefix) -> list:
    spec = machine.spec
    clock = spec.core.clock_hz
    segs = list(prefix) if prefix else []
    for item in items:
        if isinstance(item, Critical):
            segs.append((ACQ, item.lock))
            if costs.sync_cycles > 0:
                segs.append((SRV, CPU, costs.sync_cycles, clock))
            _compile_phase(machine, item.phase, segs)
            segs.append((REL, item.lock))
        else:
            _compile_phase(machine, item.phase, segs)
    return segs


def _compile_phase(machine, phase: Phase, segs: list) -> None:
    spec = machine.spec
    clock = spec.core.clock_hz
    slices = machine.slices_per_phase
    cc = spec.core.compute_cycles(phase.ops) / slices
    tb = miss_traffic_bytes(phase, spec.cache) / slices
    bus_cap = spec.per_cpu_mem_bandwidth
    per_slice = []
    if cc > 0:
        per_slice.append((SRV, CPU, cc, clock))
    if tb > 0:
        per_slice.append((SRV, BUS, tb, bus_cap))
    if per_slice:
        # every slice is the same immutable segment sequence
        segs.extend(per_slice * slices)
    if phase.serial_cycles > 0:
        segs.append((SLEEP, phase.serial_cycles / clock))
