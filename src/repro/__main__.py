"""Command-line interface: reproduce the paper from a shell.

Usage::

    python -m repro list                      # all experiment ids
    python -m repro run table5                # one table/figure
    python -m repro run table5 fig3 autopar   # several
    python -m repro all                       # everything
    python -m repro all -j 4 --profile        # in parallel, with timings
    python -m repro all --metrics             # per-experiment sim rollups
    python -m repro report                    # EXPERIMENTS.md to stdout
    python -m repro trace table5 -o t5.json   # Chrome/Perfetto trace
    python -m repro bench                     # cohort-vs-DES kernel timings
    python -m repro bench --verify            # full-registry equivalence
    python -m repro race table5 table11       # race/sync-hazard detector
    python -m repro race --all --fixtures --json race.json
    python -m repro chaos table5 --seed 7     # fault-injected runs
    python -m repro chaos --all --faults streams:0.5:0.8 --json chaos.json
    python -m repro sweep --list              # named factorial sweeps
    python -m repro sweep ci -j 4 --verify    # expand + run + parity-check
    python -m repro sweep full --manifest sweep.json
    python -m repro feedback                  # compiler feedback, Programs 1-4
    python -m repro cache info                # persistent result cache
    python -m repro cache clear
    python -m repro runs list                 # durable run artifacts
    python -m repro runs show <run-id>
    python -m repro runs diff <run-a> <run-b>
    python -m repro runs query --cell exemplar16 --since <rev>
    python -m repro runs reindex              # rebuild index from artifacts
    python -m repro serve --port 0            # simulation job server (NDJSON/TCP)
    python -m repro load --connect HOST:PORT --json BENCH_service.json

Options::

    --threat-scale 0.02    kernel scale for Threat Analysis (default 0.02)
    --terrain-scale 0.05   kernel scale for Terrain Masking (default 0.05)
    --jobs/-j N            worker processes for all/report (default: CPUs)
    --profile              per-experiment wall time + cache hits/misses

Simulation results persist in ``.repro_cache/`` (override with
``REPRO_CACHE_DIR``; disable with ``REPRO_NO_CACHE=1``), so repeated
invocations skip already-simulated runs.  Every ``all`` / ``report`` /
``bench`` / ``chaos`` invocation additionally writes a durable run
directory under ``.repro_runs/`` (override with ``REPRO_RUNS_DIR``;
disable with ``REPRO_NO_RUNS=1``) -- manifest, per-cell JSONL stream
and machine-readable report -- indexed into SQLite for ``repro runs``.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import BenchmarkData, list_experiments, run_experiment
from repro.harness.calibration import (
    DEFAULT_TERRAIN_SCALE,
    DEFAULT_THREAT_SCALE,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the SC'98 Tera MTA / C3IPBS evaluation.")
    parser.add_argument("--threat-scale", type=float,
                        default=DEFAULT_THREAT_SCALE,
                        help="kernel scale for Threat Analysis")
    parser.add_argument("--terrain-scale", type=float,
                        default=DEFAULT_TERRAIN_SCALE,
                        help="kernel scale for Terrain Masking")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run experiments by id")
    run_p.add_argument("ids", nargs="+", metavar="ID")
    run_p.add_argument("--json", metavar="PATH", default=None,
                       help="also write the results as JSON")
    all_p = sub.add_parser("all", help="run every experiment")
    report_p = sub.add_parser("report", help="print EXPERIMENTS.md content")
    for p in (all_p, report_p):
        p.add_argument("--jobs", "-j", type=int, default=None,
                       metavar="N",
                       help="worker processes (default: CPU count)")
        p.add_argument("--profile", action="store_true",
                       help="print per-experiment wall time and cache "
                            "hit/miss counts")
    all_p.add_argument("--metrics", action="store_true",
                       help="print per-experiment simulation rollups "
                            "(regions, wall split, lock contention)")
    all_p.add_argument("--metrics-json", metavar="PATH", default=None,
                       help="write the rollups (plus every per-run "
                            "stats record) as JSON")
    trace_p = sub.add_parser(
        "trace",
        help="run one experiment with event tracing and export a "
             "Chrome-trace JSON (chrome://tracing / Perfetto)")
    trace_p.add_argument("id", metavar="ID")
    trace_p.add_argument("--output", "-o", metavar="PATH", default=None,
                         help="trace file (default: trace-<ID>.json)")
    trace_p.add_argument("--max-events", type=int, default=1_000_000,
                         metavar="N",
                         help="record cap; past it records are counted "
                              "but dropped (default 1000000)")
    bench_p = sub.add_parser(
        "bench",
        help="measure the cohort fast path against pure DES")
    bench_p.add_argument("--repeat", type=int, default=3, metavar="N",
                         help="best-of-N wall clock (default 3)")
    bench_p.add_argument("--json", metavar="PATH", default=None,
                         help="also write the measurements as JSON")
    bench_p.add_argument("--verify", action="store_true",
                         help="instead of timing kernels, run every "
                              "registry experiment with the cohort "
                              "path on and off (cache disabled) and "
                              "check the rows agree to 1e-9")
    race_p = sub.add_parser(
        "race",
        help="run the deterministic race / sync-hazard detector over "
             "experiments' simulated-thread jobs")
    race_p.add_argument("ids", nargs="*", metavar="ID",
                        help="experiment ids to analyze")
    race_p.add_argument("--all", action="store_true", dest="race_all",
                        help="analyze every registered experiment")
    race_p.add_argument("--fixtures", action="store_true",
                        help="also run the intentionally buggy fixtures "
                             "and require each to be flagged")
    race_p.add_argument("--json", metavar="PATH", default=None,
                        help="write the schema-versioned report as JSON")
    race_p.add_argument("--engine", choices=("des", "cohort"),
                        default=None,
                        help="extraction to report (default: whichever "
                             "the simulators would use)")
    race_p.add_argument("--no-parity", action="store_true",
                        help="skip the DES-vs-cohort verdict "
                             "cross-check")
    chaos_p = sub.add_parser(
        "chaos",
        help="run experiments under deterministic fault injection "
             "(stream revocation, bank hot-spots, cache degradation, "
             "latency inflation)")
    chaos_p.add_argument("ids", nargs="*", metavar="ID",
                         help="experiment ids to fault")
    chaos_p.add_argument("--all", action="store_true", dest="chaos_all",
                         help="fault every registered experiment")
    chaos_p.add_argument("--faults", metavar="SPEC", default=None,
                         help="comma-separated kind[:when[:severity]] "
                              "list (default: one fault of every kind, "
                              "times/severities derived from the seed)")
    chaos_p.add_argument("--seed", type=int, default=0, metavar="N",
                         help="closes open when/severity fields "
                              "deterministically (default 0)")
    chaos_p.add_argument("--json", metavar="PATH", default=None,
                         help="write the schema-versioned report as JSON")
    chaos_p.add_argument("--machines", metavar="LIST", default=None,
                         help="comma-separated platform archetypes to "
                              "fault: mta, conventional, cmt "
                              "(default mta,conventional)")
    sweep_p = sub.add_parser(
        "sweep",
        help="expand and run a named factorial sweep (taskbench "
             "topology x size x machine x seed grids; see "
             "repro.c3i.sweeps)")
    sweep_p.add_argument("name", nargs="?", default=None, metavar="NAME",
                         help="sweep name (see --list)")
    sweep_p.add_argument("--list", action="store_true",
                         dest="list_sweeps",
                         help="list the named sweeps and their sizes")
    sweep_p.add_argument("--jobs", "-j", type=int, default=1,
                         metavar="N",
                         help="worker processes (default 1)")
    sweep_p.add_argument("--verify", action="store_true",
                         help="additionally run every unique "
                              "(machine, workload) pair on both engines "
                              "directly and require 1e-9 parity")
    sweep_p.add_argument("--expand-only", action="store_true",
                         help="expand and fingerprint without running "
                              "any cell")
    sweep_p.add_argument("--json", metavar="PATH", default=None,
                         help="write the outcome payload as JSON")
    sweep_p.add_argument("--manifest", metavar="PATH", default=None,
                         help="write the full expansion manifest "
                              "(every cell payload) as JSON")
    sub.add_parser("feedback",
                   help="compiler feedback for Programs 1-4")
    cache_p = sub.add_parser(
        "cache", help="inspect or clear the persistent result cache")
    cache_p.add_argument("action", choices=("info", "clear"))
    runs_p = sub.add_parser(
        "runs",
        help="inspect durable run artifacts (.repro_runs/) and the "
             "cross-run SQLite index")
    runs_sub = runs_p.add_subparsers(dest="runs_command", required=True)
    runs_list_p = runs_sub.add_parser(
        "list", help="list indexed runs, newest first")
    runs_list_p.add_argument("--limit", "-n", type=int, default=None,
                             metavar="N", help="show at most N runs")
    runs_show_p = runs_sub.add_parser(
        "show", help="one run's manifest, checks and cells")
    runs_show_p.add_argument("run_id", metavar="RUN",
                             help="run id (unique prefix accepted)")
    runs_diff_p = runs_sub.add_parser(
        "diff", help="compare two runs' reproduced rows "
                     "(exit 1 on any difference)")
    runs_diff_p.add_argument("run_a", metavar="RUN_A")
    runs_diff_p.add_argument("run_b", metavar="RUN_B")
    runs_query_p = runs_sub.add_parser(
        "query", help="a cell's trajectory across runs")
    runs_query_p.add_argument("--cell", metavar="CELL", default=None,
                              help="cell id (exact, else substring)")
    runs_query_p.add_argument("--since", metavar="WHEN", default=None,
                              help="run-id/git-rev prefix or ISO "
                                   "timestamp lower bound")
    runs_query_p.add_argument("--limit", "-n", type=int, default=None,
                              metavar="N")
    runs_query_p.add_argument("--json", action="store_true",
                              dest="json_out",
                              help="machine-readable output")
    runs_sub.add_parser(
        "reindex", help="rebuild the SQLite index from the artifacts "
                        "(lossless)")
    serve_p = sub.add_parser(
        "serve",
        help="run the simulation job server (newline-delimited JSON "
             "over TCP; dedupes and batches requests through the "
             "result cache and the cell scheduler)")
    serve_p.add_argument("--host", default="127.0.0.1", metavar="HOST",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=0, metavar="PORT",
                         help="bind port; 0 picks an ephemeral port and "
                              "prints it on stdout before accepting "
                              "connections (default 0)")
    serve_p.add_argument("--jobs", "-j", type=int, default=1,
                         metavar="N",
                         help="worker processes per engine batch "
                              "(default 1: in-process)")
    serve_p.add_argument("--batch-window", type=float, default=0.05,
                         metavar="S",
                         help="seconds to let concurrent requests "
                              "coalesce into one engine batch "
                              "(default 0.05)")
    serve_p.add_argument("--max-batch", type=int, default=64,
                         metavar="N",
                         help="cells per engine batch (default 64)")
    load_p = sub.add_parser(
        "load",
        help="drive a running 'repro serve' with seeded factorial "
             "load tables and publish throughput/latency quantiles")
    load_p.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="server address, e.g. 127.0.0.1:7341")
    load_p.add_argument("--mix", default="hot,scan", metavar="MIXES",
                        help="comma-separated request mixes "
                             "(hot, scan, stats; default hot,scan)")
    load_p.add_argument("--concurrency", default="1,4", metavar="LIST",
                        help="comma-separated worker counts "
                             "(default 1,4)")
    load_p.add_argument("--duration", type=float, default=2.0,
                        metavar="S",
                        help="seconds per factor cell (default 2)")
    load_p.add_argument("--seed", type=int, default=0, metavar="N",
                        help="request-stream seed (default 0)")
    load_p.add_argument("--no-warm", action="store_true",
                        help="skip the untimed cache-warming pass")
    load_p.add_argument("--json", metavar="PATH", default=None,
                        help="write the benchmark payload "
                             "(BENCH_service.json) here")
    return parser


def _cmd_list() -> int:
    for eid in list_experiments():
        print(eid)
    return 0


def _cmd_run(ids: list[str], data: BenchmarkData,
             json_path: str | None = None) -> int:
    status = 0
    results = []
    for eid in ids:
        try:
            result = run_experiment(eid, data)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        results.append(result)
        print(result.render())
        print()
        if not result.all_checks_pass():
            status = 1
    if json_path is not None:
        from repro.harness.store import dump_results
        dump_results(results, json_path)
    return status


def _cmd_all(data: BenchmarkData, jobs: int | None, profile: bool,
             metrics: bool = False,
             metrics_json: str | None = None, run=None) -> int:
    from repro.harness.parallel import (
        metrics_to_dict,
        render_metrics,
        render_profile,
        run_experiments,
    )

    results, profiles = run_experiments(
        threat_scale=data.threat_scale, terrain_scale=data.terrain_scale,
        jobs=jobs, data=data,
        cell_sink=run.cell_sink if run is not None else None)
    status = 0
    for result in results.values():
        print(result.render())
        print()
        if not result.all_checks_pass():
            status = 1
    if profile:
        print(render_profile(profiles))
    if metrics:
        print(render_metrics(profiles))
    if metrics_json is not None:
        from repro.harness.store import atomic_write_json

        atomic_write_json(metrics_json, metrics_to_dict(profiles))
    if run is not None:
        run.write_report(results.values(), profiles)
    return status


def _cmd_trace(experiment_id: str, data: BenchmarkData,
               output: str | None, max_events: int) -> int:
    import json

    from repro.obs.trace import (
        TraceRecorder,
        tracing,
        validate_chrome_trace,
    )

    recorder = TraceRecorder(max_events=max_events)
    with tracing(recorder):
        try:
            result = run_experiment(experiment_id, data)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    print(result.render())
    trace = recorder.to_chrome()
    validate_chrome_trace(trace)
    path = output or f"trace-{experiment_id}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    note = (f" ({recorder.dropped} records dropped; raise --max-events)"
            if recorder.dropped else "")
    print(f"\nwrote {len(trace['traceEvents'])} trace events to "
          f"{path}{note}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    return 0 if result.all_checks_pass() else 1


def _cmd_report(threat_scale: float, terrain_scale: float,
                jobs: int | None, profile: bool, run=None) -> int:
    import time

    from repro.harness.report import generate_with_results

    t0 = time.perf_counter()
    text, results, profiles = generate_with_results(
        threat_scale, terrain_scale, jobs=jobs,
        cell_sink=run.cell_sink if run is not None else None)
    sys.stdout.write(text)
    if profile:
        print(f"report generated in {time.perf_counter() - t0:.2f}s "
              f"({jobs or 'auto'} jobs)", file=sys.stderr)
    if run is not None:
        run.write_report(results.values(), profiles)
    return 0


def _cmd_cache(action: str) -> int:
    from repro.harness import store

    cache = store.ResultCache(store.cache_directory())
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results "
              f"from {cache.info()['directory']}")
        return 0
    info = cache.info()
    enabled = "yes" if store.cache_enabled() else "no (REPRO_NO_CACHE)"
    print(f"directory: {info['directory']}")
    print(f"enabled:   {enabled}")
    print(f"entries:   {info['entries']}")
    print(f"size:      {info['bytes'] / 1024:.1f} KiB")
    print(f"epoch:     {info['epoch']}  (model source + version hash; "
          f"entries from other epochs are ignored)")
    return 0


def _cmd_feedback() -> int:
    from repro.compiler import (
        parallelize,
        render_advisories,
        render_feedback,
        terrain_blocked_ir,
        terrain_sequential_ir,
        threat_chunked_ir,
        threat_sequential_ir,
    )

    for prog in (threat_sequential_ir(), threat_chunked_ir(),
                 terrain_sequential_ir(), terrain_blocked_ir()):
        result = parallelize(prog)
        print(render_feedback(result))
        print()
        print(render_advisories(result))
        print()
    return 0


def _cmd_serve(args, argv) -> int:
    import asyncio

    from repro.harness.rundir import (
        RunsRootError,
        ensure_runs_root,
        run_scope,
    )
    from repro.service.server import serve

    try:
        # fail *before* the socket opens on an unwritable runs root
        ensure_runs_root()
    except RunsRootError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    flags = {"threat_scale": args.threat_scale,
             "terrain_scale": args.terrain_scale,
             "host": args.host, "port": args.port, "jobs": args.jobs,
             "batch_window": args.batch_window,
             "max_batch": args.max_batch}
    with run_scope("serve", flags, argv=argv) as run:
        status = asyncio.run(serve(
            host=args.host, port=args.port,
            threat_scale=args.threat_scale,
            terrain_scale=args.terrain_scale, jobs=args.jobs,
            batch_window=args.batch_window, max_batch=args.max_batch,
            run=run))
        if run is not None:
            run.exit_status = status
    return status


def _cmd_load(args) -> int:
    import asyncio

    from repro.service.loadgen import render_payload, run_load

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"load: --connect must be HOST:PORT, got "
              f"{args.connect!r}", file=sys.stderr)
        return 2
    mixes = [m.strip() for m in args.mix.split(",") if m.strip()]
    try:
        concurrencies = [int(c) for c in args.concurrency.split(",")
                         if c.strip()]
    except ValueError:
        print(f"load: --concurrency must be comma-separated integers, "
              f"got {args.concurrency!r}", file=sys.stderr)
        return 2
    if not mixes or not concurrencies \
            or any(c < 1 for c in concurrencies):
        print("load: need at least one mix and positive concurrency",
              file=sys.stderr)
        return 2
    try:
        payload = asyncio.run(run_load(
            host, int(port_text), mixes=mixes,
            concurrencies=concurrencies, duration=args.duration,
            seed=args.seed, warm=not args.no_warm))
    except ValueError as exc:
        print(f"load: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"load: cannot reach {args.connect}: {exc}",
              file=sys.stderr)
        return 2
    print(render_payload(payload))
    if args.json is not None:
        from repro.harness.store import atomic_write_json

        atomic_write_json(args.json, payload, sort_keys=True)
        print(f"wrote {args.json}")
    failures = sum(c["errors"] for c in payload["factor_cells"])
    return 1 if failures else 0


def _cmd_runs(args) -> int:
    from repro.harness import index

    if args.runs_command == "list":
        return index.cmd_list(limit=args.limit)
    if args.runs_command == "show":
        return index.cmd_show(args.run_id)
    if args.runs_command == "diff":
        return index.cmd_diff(args.run_a, args.run_b)
    if args.runs_command == "query":
        return index.cmd_query(args.cell, args.since, args.limit,
                               args.json_out)
    if args.runs_command == "reindex":
        return index.cmd_reindex()
    return 2  # pragma: no cover


def _cmd_sweep(args, scales: dict, argv: list[str] | None) -> int:
    """``repro sweep``: expand/run a named factorial sweep."""
    from repro.c3i import sweeps as sw
    from repro.harness.store import atomic_write_json

    if args.list_sweeps:
        for name in sorted(sw.SWEEPS):
            sweep = sw.SWEEPS[name]
            print(f"{name:<8} {sweep.n_cells:>5} cells  "
                  f"{sweep.description}")
        return 0
    if args.name is None:
        print("sweep: give a sweep name or --list", file=sys.stderr)
        return 2
    try:
        sweep = sw.get_sweep(args.name)
    except KeyError as exc:
        print(f"sweep: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.manifest is not None:
        atomic_write_json(args.manifest, sw.expansion_manifest(sweep))
        print(f"wrote {args.manifest}")
    if args.expand_only:
        print(f"sweep {sweep.name}: {sweep.n_cells} cells, fingerprint "
              f"{sw.expansion_fingerprint(sweep)}")
        return 0

    from repro.harness.rundir import run_scope

    with run_scope("sweep", dict(scales, sweep=sweep.name,
                                 jobs=args.jobs, verify=args.verify),
                   argv=argv) as run:
        on_record = None
        if run is not None:
            on_record = lambda rec: run.record(  # noqa: E731
                f"sweep:{sweep.name}", rec)
        outcome = sw.run_sweep(
            sweep.name, threat_scale=scales["threat_scale"],
            terrain_scale=scales["terrain_scale"], jobs=args.jobs,
            verify=args.verify, on_record=on_record)
        status = 1 if outcome.verify_failures else 0
        if run is not None:
            run.write_report(payload=outcome.payload(sweep))
            run.exit_status = status
    if args.json is not None:
        atomic_write_json(args.json, outcome.payload(sweep))
        print(f"wrote {args.json}")
    return status


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "feedback":
        return _cmd_feedback()
    if args.command == "cache":
        return _cmd_cache(args.action)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "serve":
        return _cmd_serve(args, argv)
    if args.command == "load":
        return _cmd_load(args)

    from repro.harness.rundir import run_scope

    scales = {"threat_scale": args.threat_scale,
              "terrain_scale": args.terrain_scale}
    if args.command == "report":
        with run_scope("report", dict(scales, jobs=args.jobs),
                       argv=argv) as run:
            status = _cmd_report(args.threat_scale, args.terrain_scale,
                                 args.jobs, args.profile, run=run)
            if run is not None:
                run.exit_status = status
        return status
    data = BenchmarkData(threat_scale=args.threat_scale,
                         terrain_scale=args.terrain_scale)
    if args.command == "run":
        return _cmd_run(args.ids, data, args.json)
    if args.command == "all":
        with run_scope("all", dict(scales, jobs=args.jobs,
                                   profile=args.profile,
                                   metrics=args.metrics),
                       argv=argv) as run:
            status = _cmd_all(data, args.jobs, args.profile,
                              metrics=args.metrics,
                              metrics_json=args.metrics_json, run=run)
            if run is not None:
                run.exit_status = status
        return status
    if args.command == "trace":
        return _cmd_trace(args.id, data, args.output, args.max_events)
    if args.command == "bench":
        from repro.harness.bench import run_kernel_bench, run_verify

        with run_scope("bench", dict(scales, repeat=args.repeat,
                                     verify=args.verify),
                       argv=argv) as run:
            if args.verify:
                status = run_verify(data, run=run)
            else:
                status = run_kernel_bench(data, repeat=args.repeat,
                                          json_path=args.json, run=run)
            if run is not None:
                run.exit_status = status
        return status
    if args.command == "chaos":
        from repro.faults.chaos import (
            DEFAULT_FAULTS,
            DEFAULT_MACHINES,
            run_chaos,
        )

        machines = (tuple(m.strip() for m in args.machines.split(",")
                          if m.strip())
                    if args.machines else DEFAULT_MACHINES)
        with run_scope("chaos", dict(scales, seed=args.seed,
                                     faults=args.faults,
                                     machines=list(machines),
                                     all=args.chaos_all),
                       argv=argv) as run:
            status = run_chaos(args.ids, data, run_all=args.chaos_all,
                               faults=args.faults or DEFAULT_FAULTS,
                               seed=args.seed, json_path=args.json,
                               machines=machines, run=run)
            if run is not None:
                run.exit_status = status
        return status
    if args.command == "sweep":
        return _cmd_sweep(args, scales, argv)
    if args.command == "race":
        from repro.analysis.race import run_race

        if not args.ids and not args.race_all and not args.fixtures:
            print("race: give experiment ids, --all, or --fixtures",
                  file=sys.stderr)
            return 2
        return run_race(args.ids, data, run_all=args.race_all,
                        fixtures=args.fixtures, json_path=args.json,
                        engine=args.engine, parity=not args.no_parity)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
