"""Terrain Masking: maximum safe flight altitude over defended terrain.

Problem (paper, Section 6): given the ground elevation of a terrain and
a set of ground-based threats (position + sensor range), compute for
every terrain point the maximum altitude at which an aircraft is
invisible to all threats.  The per-threat computation is a
line-of-sight shadow propagation: the value at one point is computed
from the values at neighboring points along the ray back to the threat
(the wavefront dependence the paper describes), ring by ring outward.
"""

from repro.c3i.terrain.model import (
    GroundThreat,
    RegionWindow,
    generate_terrain,
    masking_for_threat,
    ring_offsets,
)
from repro.c3i.terrain.scenarios import (
    FULL_SCALE,
    TerrainScenario,
    benchmark_scenarios,
    make_scenario,
)
from repro.c3i.terrain.sequential import TerrainMaskingResult, run_sequential
from repro.c3i.terrain.blocked import BlockedResult, run_blocked
from repro.c3i.terrain.finegrained import (
    FineGrainedTerrainResult,
    run_finegrained,
)
from repro.c3i.terrain.validate import (
    check_blocked,
    check_finegrained,
    check_masking,
)
from repro.c3i.terrain.workload import (
    blocked_benchmark_job,
    blocked_memory_footprint,
    finegrained_benchmark_job,
    sequential_benchmark_job,
)

__all__ = [
    "BlockedResult",
    "FULL_SCALE",
    "FineGrainedTerrainResult",
    "GroundThreat",
    "RegionWindow",
    "TerrainMaskingResult",
    "TerrainScenario",
    "benchmark_scenarios",
    "blocked_benchmark_job",
    "blocked_memory_footprint",
    "check_blocked",
    "check_finegrained",
    "check_masking",
    "finegrained_benchmark_job",
    "generate_terrain",
    "make_scenario",
    "masking_for_threat",
    "ring_offsets",
    "run_blocked",
    "run_finegrained",
    "run_sequential",
    "sequential_benchmark_job",
]
