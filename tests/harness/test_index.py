"""Tests for the SQLite cross-run index (``repro runs ...``).

The headline property: the index is *derived* from the run artifacts
alone, so dropping it and re-indexing reproduces the incrementally
maintained database row for row (``dump_rows`` equality).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.__main__ import main
from repro.harness import index, rundir
from repro.harness.rundir import RunWriter


@pytest.fixture
def runs_root(tmp_path, monkeypatch):
    d = tmp_path / "runs"
    monkeypatch.setenv(rundir.RUNS_DIR_ENV, str(d))
    monkeypatch.delenv(rundir.NO_RUNS_ENV, raising=False)
    return d


def _make_run(command: str = "all", cells: int = 2,
              rows: int = 0, exit_status: int = 0) -> RunWriter:
    """One finished (and therefore live-indexed) synthetic run."""
    writer = RunWriter(command, {"threat_scale": 0.02,
                                 "terrain_scale": 0.05, "jobs": 1})
    for n in range(cells):
        writer.record("t", {
            "kind": "mta", "machine": f"M{n}", "job": f"j{n}",
            "seconds": 1.0 + n, "seed_offset": 0, "key": f"k{n}",
            "stats": {"cohort_regions": float(n)}})
    if rows:
        from repro.harness.experiment import (
            ExperimentResult,
            Row,
            ShapeCheck,
        )

        writer.write_report(results=[ExperimentResult(
            "tableX", "T",
            rows=tuple(Row(f"r{n}", float(n), 1.5 * (n + 1))
                       for n in range(rows)),
            checks=(ShapeCheck("holds", True),))])
    writer.exit_status = exit_status
    writer.finish()
    return writer


# ----------------------------------------------------------------------
# losslessness
# ----------------------------------------------------------------------

def test_reindex_is_row_identical_to_live_index(runs_root):
    for command, cells, rows in (("all", 3, 4), ("bench", 2, 0),
                                 ("chaos", 1, 0)):
        _make_run(command, cells=cells, rows=rows)

    conn = index.connect()
    live = index.dump_rows(conn)
    conn.close()
    assert len(live["runs"]) == 3
    assert len(live["cells"]) == 6
    assert len(live["rows"]) == 4

    n_runs, n_cells = index.reindex()
    assert (n_runs, n_cells) == (3, 6)
    conn = index.connect()
    rebuilt = index.dump_rows(conn)
    conn.close()
    assert rebuilt == live

    # even from a deleted database (fresh clone of the artifacts)
    os.remove(index.db_path())
    index.reindex()
    conn = index.connect()
    assert index.dump_rows(conn) == live
    conn.close()


def test_torn_final_jsonl_line_is_tolerated(runs_root):
    writer = _make_run(cells=2)
    with open(os.path.join(writer.directory, "cells.jsonl"), "a",
              encoding="utf-8") as fh:
        fh.write('{"seq": 2, "cell": "half-writ')   # crashed mid-line
    index.reindex()
    conn = index.connect()
    (n,) = conn.execute("SELECT COUNT(*) FROM cells").fetchone()
    conn.close()
    assert n == 2                      # intact lines survive


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------

def test_resolve_run_prefix_and_ambiguity(runs_root):
    a = _make_run()
    b = _make_run()
    conn = index.connect()
    try:
        assert index.resolve_run(conn, a.run_id) == a.run_id
        # the full stamp-pid-hex id is unique at any distinguishing
        # prefix; the shared stamp prefix is ambiguous
        assert index.resolve_run(conn, a.run_id[:-2]) == a.run_id
        with pytest.raises(KeyError, match="ambiguous"):
            index.resolve_run(conn, a.run_id[:8])
        with pytest.raises(KeyError, match="no indexed run"):
            index.resolve_run(conn, "nope")
    finally:
        conn.close()


def test_query_cells_shape_and_matching(runs_root):
    _make_run(cells=3)
    conn = index.connect()
    try:
        records = index.query_cells(conn)
        assert len(records) == 3
        assert set(records[0]) == {
            "run_id", "started", "git_rev", "command", "cell", "kind",
            "seconds", "seed_offset", "stats"}
        assert records[0]["stats"] == {"cohort_regions": 0.0}
        assert [r["seconds"] for r in records] == [1.0, 2.0, 3.0]

        # exact cell-id match
        assert [r["cell"] for r in
                index.query_cells(conn, cell="m1/j1")] == ["m1/j1"]
        # substring fallback when no exact match exists
        subs = index.query_cells(conn, cell="j1")
        assert [r["cell"] for r in subs] == ["m1/j1"]
        assert index.query_cells(conn, cell="zzz") == []
        assert len(index.query_cells(conn, limit=2)) == 2
    finally:
        conn.close()


def test_diff_runs_identical_and_changed(runs_root):
    a = _make_run(rows=3)
    b = _make_run(rows=3)
    conn = index.connect()
    try:
        diff = index.diff_runs(conn, a.run_id, b.run_id)
        assert diff["common"] == 3
        assert not (diff["changed"] or diff["only_a"]
                    or diff["only_b"])

        # perturb one of b's stored rows and re-diff
        conn.execute(
            "UPDATE rows SET simulated = simulated * 1.5 "
            "WHERE run_id = ? AND label = 'r1'", (b.run_id,))
        diff = index.diff_runs(conn, a.run_id, b.run_id)
        assert [key for key, _, _ in diff["changed"]] \
            == [("tableX", "r1")]
    finally:
        conn.close()


# ----------------------------------------------------------------------
# CLI round trip (the satellite smoke: list -> show -> reindex -> diff)
# ----------------------------------------------------------------------

def test_runs_cli_round_trip(runs_root, capsys):
    a = _make_run(rows=2)
    b = _make_run(rows=2)

    assert main(["runs", "list"]) == 0
    out = capsys.readouterr().out
    assert a.run_id in out and b.run_id in out and "1/1" in out

    assert main(["runs", "show", a.run_id]) == 0
    out = capsys.readouterr().out
    assert a.run_id in out and "checks:" in out and "m0/j0" in out

    assert main(["runs", "reindex"]) == 0
    assert "reindexed 2 runs" in capsys.readouterr().out

    assert main(["runs", "diff", a.run_id, b.run_id]) == 0  # identical
    assert "0 changed" in capsys.readouterr().out

    assert main(["runs", "query", "--cell", "m0/j0", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cell"] == "m0/j0"
    assert [r["run_id"] for r in payload["records"]] \
        == sorted([a.run_id, b.run_id])

    assert main(["runs", "show", "zzz"]) == 2
    assert "no indexed run" in capsys.readouterr().err
    assert main(["runs", "diff", a.run_id, "zzz"]) == 2


def test_missing_database_is_rebuilt_on_first_query(runs_root, capsys):
    writer = _make_run()
    os.remove(index.db_path())
    assert main(["runs", "list"]) == 0
    assert writer.run_id in capsys.readouterr().out


def test_cli_end_to_end_writes_and_indexes_artifacts(runs_root, capsys):
    """Acceptance: a real ``repro all`` leaves all three artifacts and
    the index answers for it."""
    assert main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "all", "-j", "1"]) == 0
    capsys.readouterr()

    (run_dir,) = index.run_dirs()
    for artifact in ("manifest.json", "cells.jsonl", "report.json"):
        assert os.path.exists(os.path.join(run_dir, artifact))
    with open(os.path.join(run_dir, "manifest.json")) as fh:
        manifest = json.load(fh)
    assert manifest["status"] == "ok" and manifest["n_cells"] > 0
    assert manifest["report"]["checks_total"] > 0

    assert main(["runs", "list"]) == 0
    assert manifest["run_id"] in capsys.readouterr().out
    assert main(["runs", "query", "-n", "3"]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 5
