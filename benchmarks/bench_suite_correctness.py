"""The C3IPBS-style correctness run: every program variant of both
problems, validated against its reference output (the suite ships a
correctness test per problem; this is ours)."""

import pytest

pytestmark = pytest.mark.slow  # cycle-accurate / full-sweep benches


def bench_suite_threat_analysis(benchmark, data):
    from repro.c3i.suite import run_problem

    report = benchmark.pedantic(
        run_problem, args=("threat-analysis",),
        kwargs={"scale": 0.02}, rounds=1, iterations=1)
    print()
    print(f"{report.problem}: {report.n_scenarios} scenarios")
    for v in report.variants:
        mark = "ok " if v.correct else "FAIL"
        print(f"  [{mark}] {v.name:<40} kernel {v.kernel_seconds:.2f}s")
    assert report.correct


def bench_suite_terrain_masking(benchmark, data):
    from repro.c3i.suite import run_problem

    report = benchmark.pedantic(
        run_problem, args=("terrain-masking",),
        kwargs={"scale": 0.05}, rounds=1, iterations=1)
    print()
    print(f"{report.problem}: {report.n_scenarios} scenarios")
    for v in report.variants:
        mark = "ok " if v.correct else "FAIL"
        print(f"  [{mark}] {v.name:<40} kernel {v.kernel_seconds:.2f}s")
    assert report.correct
