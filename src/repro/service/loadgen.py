"""``repro load``: seeded, headless load generation for the service.

The generator drives a *factorial run table* -- every combination of
request **mix** x worker **concurrency**, each cell held for a fixed
**duration** -- against a running ``repro serve`` instance, and
publishes throughput and latency quantiles per factor cell
(``BENCH_service.json``).  Everything is derived from one seed: the
per-worker request streams are ``random.Random`` children keyed on
(mix, concurrency, worker), so two runs with the same seed issue the
same requests in the same per-worker order.

Request mixes (the workload factor):

``hot``
    A tiny pool of distinct cells requested over and over -- after the
    first completions every request is a cache or in-flight dedupe
    hit.  This is the service's steady state and the latency the CI
    budget polices.
``scan``
    Randomized machine x workload x seed-universe cells from the full
    request space -- mostly cold keys, exercising the batcher and the
    engine.
``stats``
    The ``stats`` op only: protocol + event-loop overhead floor.

An optional warm pass (one request per distinct hot cell, untimed)
runs before the first measured cell so ``hot`` measures the warm
cache, not first-touch kernel builds.

Latency is measured per *request* (send to ``done`` line, including
every streamed cell), in milliseconds; quantiles use the linear
interpolation of :func:`repro.obs.metrics.quantile`.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from typing import Optional

from repro.obs.metrics import quantile
from repro.service import protocol

SCHEMA = "repro-bench-service/v1"

MIXES = ("hot", "scan", "stats")

#: the ``hot`` pool: few distinct cells, both machine kinds
HOT_CELLS = (
    {"machine": "mta:2", "workload": "th-job-seq"},
    {"machine": "mta:2", "workload": "te-job-fg"},
    {"machine": "exemplar:4", "workload": "te-job-seq"},
    {"machine": "alpha", "workload": "th-job-seq"},
)

#: the ``scan`` request space
SCAN_MACHINES = ("alpha", "ppro:2", "ppro:4", "exemplar:2",
                 "exemplar:8", "exemplar:16", "mta:1", "mta:2", "mta:4")
SCAN_WORKLOADS = ("th-job-seq", "th-job-fg", "te-job-seq", "te-job-fg",
                  "th-job-ch-4-os", "th-job-ch-8-sw", "te-job-bl-4-os",
                  "te-job-bl-8-sw")


class ServiceClient:
    """A minimal NDJSON client for one connection (also used by tests)."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES)
        sock = writer.get_extra_info("socket")
        if sock is not None:  # measured latency, not Nagle stalls
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(reader, writer)

    async def send(self, message: dict) -> None:
        self.writer.write(protocol.encode(message))
        await self.writer.drain()

    async def recv(self) -> dict:
        line = await self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    async def request(self, message: dict) -> list[dict]:
        """Send one request, collect lines until its terminal line."""
        await self.send(message)
        lines: list[dict] = []
        while True:
            response = await self.recv()
            lines.append(response)
            if response.get("type") in ("done", "error", "stats",
                                        "hello", "bye"):
                return lines

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _mix_request(mix: str, rng: random.Random, counter: int) -> dict:
    """One seeded request of the given mix."""
    if mix == "stats":
        return {"op": "stats"}
    if mix == "hot":
        cell = HOT_CELLS[rng.randrange(len(HOT_CELLS))]
        return {"op": "simulate", "id": f"hot-{counter}",
                "cells": [dict(cell)]}
    if mix == "scan":
        cell = {
            "machine": SCAN_MACHINES[rng.randrange(len(SCAN_MACHINES))],
            "workload": SCAN_WORKLOADS[
                rng.randrange(len(SCAN_WORKLOADS))],
            "seed_offset": rng.randrange(3),
        }
        return {"op": "simulate", "id": f"scan-{counter}",
                "cells": [cell]}
    raise ValueError(f"unknown mix {mix!r}; known: {', '.join(MIXES)}")


async def _worker(host: str, port: int, mix: str, seed: str,
                  deadline: float, out: dict) -> None:
    """One load worker: its own connection, seeded request stream.

    ``seed`` is a string key; ``random.Random`` seeds str/bytes via a
    stable hash, so the stream is reproducible across processes
    (unlike ``hash()``, which is salted per process).
    """
    rng = random.Random(seed)
    client = await ServiceClient.connect(host, port)
    try:
        counter = 0
        while time.perf_counter() < deadline:
            message = _mix_request(mix, rng, counter)
            counter += 1
            t0 = time.perf_counter()
            lines = await client.request(message)
            out["latencies"].append(
                (time.perf_counter() - t0) * 1000.0)
            out["requests"] += 1
            for line in lines:
                if line.get("type") == "cell":
                    out["cells"] += 1
                elif line.get("type") == "error" or (
                        line.get("type") == "done"
                        and not line.get("ok", True)):
                    out["errors"] += 1
    finally:
        await client.close()


async def _warm(host: str, port: int) -> None:
    """Populate the cache with the hot pool (untimed)."""
    client = await ServiceClient.connect(host, port)
    try:
        await client.request({
            "op": "simulate", "id": "warm",
            "cells": [dict(c) for c in HOT_CELLS]})
    finally:
        await client.close()


def _latency_summary(latencies: list[float]) -> dict:
    if not latencies:
        return {"p50": None, "p95": None, "p99": None,
                "mean": None, "max": None}
    return {
        "p50": round(quantile(latencies, 0.50), 3),
        "p95": round(quantile(latencies, 0.95), 3),
        "p99": round(quantile(latencies, 0.99), 3),
        "mean": round(sum(latencies) / len(latencies), 3),
        "max": round(max(latencies), 3),
    }


async def run_load(host: str, port: int, *, mixes: list[str],
                   concurrencies: list[int], duration: float,
                   seed: int = 0, warm: bool = True) -> dict:
    """Run the factorial table; returns the benchmark payload."""
    for mix in mixes:
        if mix not in MIXES:
            raise ValueError(
                f"unknown mix {mix!r}; known: {', '.join(MIXES)}")
    if warm:
        await _warm(host, port)
    cells = []
    for mix in mixes:
        for concurrency in concurrencies:
            out = {"latencies": [], "requests": 0, "cells": 0,
                   "errors": 0}
            t0 = time.perf_counter()
            deadline = t0 + duration
            await asyncio.gather(*[
                _worker(host, port, mix,
                        f"{seed}:{mix}:{concurrency}:{w}",
                        deadline, out)
                for w in range(concurrency)])
            wall = time.perf_counter() - t0
            cells.append({
                "mix": mix,
                "concurrency": concurrency,
                "duration_s": round(wall, 3),
                "requests": out["requests"],
                "cells": out["cells"],
                "errors": out["errors"],
                "throughput_rps": round(out["requests"] / wall, 3)
                if wall > 0 else None,
                "latency_ms": _latency_summary(out["latencies"]),
            })
    # the server-side story of the same run
    client = await ServiceClient.connect(host, port)
    try:
        hello = (await client.request({"op": "hello"}))[-1]
        stats = (await client.request({"op": "stats"}))[-1]["stats"]
    finally:
        await client.close()
    return {
        "schema": SCHEMA,
        "seed": seed,
        "warm": warm,
        "duration_s": duration,
        "mixes": list(mixes),
        "concurrencies": list(concurrencies),
        "server": {k: hello.get(k) for k in
                   ("schema", "model_epoch", "threat_scale",
                    "terrain_scale", "jobs")},
        "factor_cells": cells,
        "server_stats": stats,
    }


def render_payload(payload: dict) -> str:
    """Human-readable factor-cell table."""
    lines = [f"service load (seed {payload['seed']}, "
             f"{payload['duration_s']}s per cell, "
             f"warm={payload['warm']})"]
    header = (f"  {'mix':<8} {'conc':>4} {'reqs':>6} {'cells':>6} "
              f"{'err':>4} {'rps':>8} {'p50ms':>8} {'p95ms':>8} "
              f"{'p99ms':>8}")
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for cell in payload["factor_cells"]:
        lat = cell["latency_ms"]

        def fmt(v):
            return f"{v:>8.1f}" if isinstance(v, (int, float)) \
                else f"{'-':>8}"

        lines.append(
            f"  {cell['mix']:<8} {cell['concurrency']:>4} "
            f"{cell['requests']:>6} {cell['cells']:>6} "
            f"{cell['errors']:>4} {fmt(cell['throughput_rps'])} "
            f"{fmt(lat['p50'])} {fmt(lat['p95'])} {fmt(lat['p99'])}")
    stats = payload.get("server_stats") or {}
    lines.append(
        f"  server: {stats.get('requests', 0)} requests, "
        f"{stats.get('cells', 0)} cells "
        f"({stats.get('dedupe_cached', 0)} cached, "
        f"{stats.get('dedupe_inflight', 0)} in-flight dedupes, "
        f"{stats.get('engine_cells', 0)} engine runs in "
        f"{stats.get('batches', 0)} batches)")
    return "\n".join(lines)
