"""Tests for the macro locality model, cross-validated against the
trace-level cache simulator on the boundary patterns."""

import pytest

from repro.machines import CacheSpec, SetAssociativeCache, miss_traffic_bytes
from repro.workload import AccessPattern, OpCounts, make_phase


CACHE = CacheSpec(capacity_bytes=64 * 1024, line_bytes=64, assoc=4)


def phase_touching(touched_bytes, unique_bytes,
                   pattern=AccessPattern.SEQUENTIAL, shared=0.0):
    n_refs = touched_bytes / 8
    return make_phase(
        "p", OpCounts(load=n_refs), unique_bytes=unique_bytes,
        pattern=pattern, shared_fraction=shared)


def test_zero_memory_phase_has_no_traffic():
    p = make_phase("p", OpCounts(ialu=1000))
    assert miss_traffic_bytes(p, CACHE) == 0.0


def test_in_cache_footprint_costs_compulsory_only():
    # 16 KB footprint referenced 10 times over: one fetch, then hits.
    p = phase_touching(touched_bytes=160 * 1024, unique_bytes=16 * 1024)
    assert miss_traffic_bytes(p, CACHE) == pytest.approx(16 * 1024)


def test_streaming_footprint_costs_every_byte():
    # Footprint = touched = 1 MB: single pass, no reuse to lose.
    p = phase_touching(touched_bytes=1 << 20, unique_bytes=1 << 20)
    assert miss_traffic_bytes(p, CACHE) == pytest.approx(1 << 20)


def test_oversized_reuse_becomes_traffic():
    # 1 MB footprint swept 4 times over a 64 KB cache: nearly all of
    # the 4 MB touched turns into traffic.
    p = phase_touching(touched_bytes=4 << 20, unique_bytes=1 << 20)
    traffic = miss_traffic_bytes(p, CACHE)
    assert traffic > 3.5 * (1 << 20)
    assert traffic <= 4 << 20


def test_traffic_monotonic_in_footprint():
    touched = 8 << 20
    prev = -1.0
    for unique in (16 * 1024, 64 * 1024, 256 * 1024, 1 << 20, 8 << 20):
        t = miss_traffic_bytes(
            phase_touching(touched, unique), CACHE)
        assert t >= prev
        prev = t


def test_random_pattern_amplifies_traffic():
    seq = phase_touching(1 << 20, 1 << 20, AccessPattern.SEQUENTIAL)
    rnd = phase_touching(1 << 20, 1 << 20, AccessPattern.RANDOM)
    assert miss_traffic_bytes(rnd, CACHE) == pytest.approx(
        4 * miss_traffic_bytes(seq, CACHE))


def test_traffic_never_exceeds_line_per_reference():
    # Tiny accesses with random pattern: ceiling is line per reference.
    p = phase_touching(1024, 1024, AccessPattern.RANDOM)
    traffic = miss_traffic_bytes(p, CACHE)
    assert traffic <= (1024 / 8) * CACHE.line_bytes


def test_shared_fraction_adds_coherence_traffic():
    base = phase_touching(1 << 20, 16 * 1024)  # fits in cache
    shared = phase_touching(1 << 20, 16 * 1024, shared=0.25)
    assert miss_traffic_bytes(shared, CACHE) == pytest.approx(
        miss_traffic_bytes(base, CACHE) + 0.25 * (1 << 20))


# ----------------------------------------------------------------------
# Cross-validation against the trace-level simulator
# ----------------------------------------------------------------------

def test_macro_matches_trace_for_streaming():
    """Single sequential pass over memory >> cache."""
    trace = SetAssociativeCache(64 * 1024, line_bytes=64, assoc=4)
    n_bytes = 512 * 1024
    trace.access_range(0, n_bytes, stride=8)
    macro = miss_traffic_bytes(
        phase_touching(n_bytes, n_bytes), CACHE)
    assert macro == pytest.approx(trace.miss_traffic_bytes, rel=0.05)


def test_macro_matches_trace_for_in_cache_reuse():
    """Many passes over a footprint that fits: both find ~compulsory."""
    trace = SetAssociativeCache(64 * 1024, line_bytes=64, assoc=4)
    footprint = 16 * 1024
    for _ in range(10):
        trace.access_range(0, footprint, stride=8)
    macro = miss_traffic_bytes(
        phase_touching(10 * footprint, footprint), CACHE)
    assert macro == pytest.approx(trace.miss_traffic_bytes, rel=0.05)


def test_macro_matches_trace_for_thrashing_sweep():
    """Repeated sweeps over 8x the cache: every pass re-misses."""
    trace = SetAssociativeCache(64 * 1024, line_bytes=64, assoc=4)
    footprint = 512 * 1024
    passes = 4
    for _ in range(passes):
        trace.access_range(0, footprint, stride=8)
    macro = miss_traffic_bytes(
        phase_touching(passes * footprint, footprint), CACHE)
    # macro model credits the ~cache-sized resident fraction; allow 15%
    assert macro == pytest.approx(trace.miss_traffic_bytes, rel=0.15)
