"""Tests for experiment result containers and rendering."""

import pytest

from repro.harness import (
    ExperimentResult,
    Row,
    ShapeCheck,
    render_comparison_table,
    render_speedup_figure,
)


def test_row_ratio_and_error():
    r = Row("x", paper=100.0, simulated=110.0)
    assert r.ratio == pytest.approx(1.1)
    assert r.error_pct == pytest.approx(10.0)
    assert Row("y", paper=None, simulated=5.0).ratio is None
    assert Row("z", paper=0.0, simulated=5.0).error_pct is None


def test_shape_check_str():
    ok = ShapeCheck("works", True, "detail")
    bad = ShapeCheck("broken", False)
    assert "PASS" in str(ok) and "detail" in str(ok)
    assert "FAIL" in str(bad)


def test_experiment_result_accessors():
    rows = (Row("a", 1.0, 1.1), Row("b", 2.0, 1.9))
    res = ExperimentResult("t", "Title", rows,
                           (ShapeCheck("c1", True),))
    assert res.all_checks_pass()
    assert res.row("a").simulated == 1.1
    with pytest.raises(KeyError):
        res.row("missing")
    text = res.render()
    assert "Title" in text and "PASS" in text


def test_experiment_result_failing_check():
    res = ExperimentResult("t", "T", (Row("a", 1.0, 9.0),),
                           (ShapeCheck("c", False),))
    assert not res.all_checks_pass()
    assert "FAIL" in res.render()


def test_render_comparison_table_alignment():
    rows = (Row("short", 100.0, 105.0),
            Row("a much longer label here", None, 5.0))
    text = render_comparison_table(rows)
    lines = text.splitlines()
    assert len(lines) == 4
    assert "+5.0" in text
    assert "-" in lines[3]  # missing paper value rendered as dash


def test_render_speedup_figure():
    fig = render_speedup_figure("Figure 1", [1, 2, 4], [1.0, 1.9, 3.6],
                                paper_speedups=[1.0, 2.0, 3.9])
    assert "Figure 1" in fig
    body = fig.splitlines()[3:]  # skip title/rule/legend
    assert sum(line.count("*") for line in body) == 3
    assert any("|" in line for line in body)


def test_render_speedup_figure_validation():
    with pytest.raises(ValueError):
        render_speedup_figure("t", [1, 2], [1.0])
    with pytest.raises(ValueError):
        render_speedup_figure("t", [1], [1.0], paper_speedups=[1.0, 2.0])
