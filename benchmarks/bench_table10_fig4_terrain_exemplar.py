"""Table 10 / Figure 4: coarse-grained Terrain Masking on the 16-CPU
Exemplar -- memory contention saturates the speedup near 6-7x."""

import pytest

pytestmark = pytest.mark.slow  # cycle-accurate / full-sweep benches

from _support import run_and_report

from repro.harness import render_speedup_figure
from repro.harness.calibration import PAPER_TABLE10


def bench_table10_fig4(benchmark, data):
    result = run_and_report(benchmark, data, "table10")
    procs = list(range(1, 17))
    seq = result.row("sequential").simulated
    speedups = [seq / result.row(f"{n} processors").simulated
                for n in procs]
    paper = [PAPER_TABLE10["sequential"] / PAPER_TABLE10[n]
             for n in procs]
    print()
    print(render_speedup_figure(
        "Figure 4: Terrain Masking speedup on 16-CPU Exemplar",
        procs, speedups, paper))
