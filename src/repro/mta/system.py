"""Cycle-accurate MTA system: processors + interleaved memory + driver.

This is the micro-fidelity model backing the unit tests and the
Section 7 micro-claims benchmark.  It executes real instruction lists
(:class:`~repro.mta.stream.Instruction`) with exact issue-interval,
lookahead, full/empty and bank-conflict behaviour.  Whole benchmarks
run on the macro model (:class:`~repro.mta.machine.MtaMachine`)
instead -- at paper scale they would need ~10^10 cycles here.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from repro.mta.memory import InterleavedMemory, MemRequest
from repro.mta.processor import CycleProcessor
from repro.mta.spec import MtaSpec
from repro.mta.stream import Instruction, Stream


@dataclass(frozen=True)
class CycleStats:
    """Outcome of a cycle-level run."""

    cycles: float
    total_issued: int
    per_processor_issued: tuple[int, ...]
    per_processor_utilization: tuple[float, ...]
    memory_requests: int
    memory_retries: int
    completed: bool  # False if max_cycles hit first
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        u = self.per_processor_utilization
        return sum(u) / len(u) if u else 0.0


class MtaSystem:
    """Driver binding cycle-level processors to one shared memory."""

    def __init__(self, spec: MtaSpec,
                 memory: Optional[InterleavedMemory] = None):
        self.spec = spec
        self.memory = memory if memory is not None else InterleavedMemory(
            n_banks=64, latency_cycles=spec.mem_latency_cycles)
        self.processors = [
            CycleProcessor(pid=p, max_streams=spec.streams_per_processor)
            for p in range(spec.n_processors)
        ]
        self._streams: list[tuple[Stream, CycleProcessor]] = []
        self._next_sid = 0

    # ------------------------------------------------------------------
    def add_stream(self, program: list[Instruction],
                   processor: int = 0) -> Stream:
        """Load a program onto a hardware stream of ``processor``."""
        proc = self.processors[processor]
        stream = Stream(sid=self._next_sid, program=list(program))
        self._next_sid += 1
        proc.add_stream(stream)
        self._streams.append((stream, proc))
        return stream

    # ------------------------------------------------------------------
    def run(self, max_cycles: float = 10_000_000.0) -> CycleStats:
        """Run until every stream finishes (or ``max_cycles``)."""
        spec = self.spec
        mem = self.memory
        heap: list[tuple[float, int, str, object]] = []
        seq = 0

        def push(cycle: float, kind: str, payload: object) -> None:
            nonlocal seq
            heapq.heappush(heap, (cycle, seq, kind, payload))
            seq += 1

        last_activity = 0.0
        for stream, _proc in self._streams:
            push(0.0, "check", stream)

        proc_of = {s.sid: p for s, p in self._streams}

        def issue_memory(stream: Stream, idx: int, ins: Instruction,
                         slot: float) -> None:
            def on_complete(done: float, value: object,
                            _s=stream, _i=idx) -> None:
                _s.note_completion(_i, done, value)
                push(done, "check", _s)

            req = MemRequest(kind=ins.kind, addr=ins.addr, value=ins.value,
                             on_complete=on_complete)
            mem.issue(req, slot)
            for when, retry_req in mem.drain_retries():
                push(when, "retry", retry_req)

        while heap:
            cycle, _s, kind, payload = heapq.heappop(heap)
            if cycle > max_cycles:
                break
            if kind == "retry":
                result = mem.retry(payload, cycle)
                if result is None:
                    for when, retry_req in mem.drain_retries():
                        push(when, "retry", retry_req)
                else:
                    last_activity = max(last_activity, result)
                continue

            stream: Stream = payload
            proc = proc_of[stream.sid]
            ready, earliest = stream.can_issue_at(
                cycle, spec.issue_interval_cycles, spec.lookahead)
            if not ready:
                if earliest is not None and earliest > cycle:
                    push(earliest, "check", stream)
                # else: blocked on an unknown completion; a completion
                # event will re-check
                continue

            slot = proc.take_slot(cycle)
            idx = stream.note_issue(slot)
            ins = stream.program[idx]
            last_activity = max(last_activity, slot + 1.0)
            if ins.is_memory:
                issue_memory(stream, idx, ins, slot)
            if stream.next_instruction() is not None:
                push(slot + spec.issue_interval_cycles, "check", stream)

        completed = all(s.done for s, _p in self._streams)
        # elapsed cycles: until the last issue/completion
        for stream, _p in self._streams:
            for c in stream.completion.values():
                if c is not None:
                    last_activity = max(last_activity, c)
        cycles = last_activity
        return CycleStats(
            cycles=cycles,
            total_issued=sum(p.issued for p in self.processors),
            per_processor_issued=tuple(p.issued for p in self.processors),
            per_processor_utilization=tuple(
                p.utilization(cycles) for p in self.processors),
            memory_requests=mem.requests,
            memory_retries=mem.retries,
            completed=completed,
            stats={"bank_conflict_cycles": mem.bank_conflict_cycles},
        )


# ----------------------------------------------------------------------
# Kernel generators for the micro-claims benchmarks and tests
# ----------------------------------------------------------------------

def alu_kernel(n: int) -> list[Instruction]:
    """Pure-ALU kernel: independent instructions, issue-interval bound."""
    return [Instruction("alu") for _ in range(n)]


def independent_load_kernel(n: int, stride: int = 8, base: int = 0
                            ) -> list[Instruction]:
    """Loads with no consumer: latency fully hidden by lookahead."""
    return [Instruction("load", addr=base + i * stride) for i in range(n)]


def dependent_load_kernel(n: int, stride: int = 8, base: int = 0
                          ) -> list[Instruction]:
    """Pointer-chase style: each load waits for the previous one."""
    prog: list[Instruction] = []
    for i in range(n):
        dep = i - 1 if i > 0 else None
        prog.append(Instruction("load", addr=base + i * stride,
                                depends_on=dep))
    return prog


def load_use_kernel(n_pairs: int, stride: int = 8, base: int = 0
                    ) -> list[Instruction]:
    """Alternating load / consuming-ALU pairs: the typical inner loop."""
    prog: list[Instruction] = []
    for i in range(n_pairs):
        prog.append(Instruction("load", addr=base + i * stride))
        prog.append(Instruction("alu", depends_on=len(prog) - 1))
    return prog
