"""The event loop driving a discrete-event simulation."""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

from repro.des.errors import DesError, SimulationDeadlock
from repro.des.events import Event, Timeout
from repro.des.process import Process, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.monitor import SyncMonitor
    from repro.obs.trace import TraceRecorder


class Simulator:
    """A deterministic discrete-event simulation.

    Events are processed in order of (time, priority, insertion order),
    so two runs of the same model are bit-identical.  Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(3.0)
            return "done"

        p = sim.process(worker(sim))
        sim.run()
        assert sim.now == 3.0 and p.value == "done"

    Observability hooks (both default off and cost nothing beyond a
    ``None`` check on the paths that consult them):

    * ``trace`` -- an :class:`repro.obs.trace.TraceRecorder`; when set,
      the kernel primitives emit typed thread/resource records into it.
    * ``monitor`` -- a :class:`repro.analysis.monitor.SyncMonitor`; when
      set, the sync primitives in :mod:`repro.des.sync` report hazard
      events (full-cell overwrites, stuck readers/writers, barrier
      shortfalls) into it.
    * ``stall_limit`` -- a watchdog: when set to an integer N, ``run()``
      uses a guarded loop that raises a
      :class:`~repro.des.errors.DeadlockDiagnostic` if more than N
      events are processed without simulated time advancing (a
      same-timestamp livelock the plain loop would spin on forever).
    """

    __slots__ = ("now", "_heap", "_seq", "_active_process", "trace",
                 "monitor", "processes", "stall_limit")

    def __init__(self, start_time: float = 0.0,
                 stall_limit: Optional[int] = None):
        self.now: float = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: optional TraceRecorder consulted by the kernel primitives
        self.trace: Optional["TraceRecorder"] = None
        #: optional SyncMonitor consulted by the sync primitives
        self.monitor: Optional["SyncMonitor"] = None
        #: every Process ever registered, in creation (tid) order
        self.processes: list[Process] = []
        self.stall_limit = stall_limit

    # ------------------------------------------------------------------
    # event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event, to be succeeded/failed manually."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event firing ``delay`` simulated time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Register a generator as a simulated process."""
        return Process(self, generator, name=name)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # scheduling / execution
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event, priority: int = 1,
                 delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap,
                       (self.now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationDeadlock("no events scheduled")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self.now:  # pragma: no cover - defensive
            raise DesError("event scheduled in the past")
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if event._exc is not None and not event._defused:
            # A failure nobody waited on: surface it instead of silently
            # swallowing a crashed process.
            raise event._exc

    def run(self, until: Optional[float | Event] = None) -> object:
        """Run until the heap is empty, a time is reached, or an event fires.

        ``until`` may be ``None`` (run to exhaustion), a number (simulated
        time to stop at), or an :class:`Event` (stop when it is processed
        and return its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self.now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self.now})")

        if self.stall_limit is not None:
            return self._run_watched(stop_event, stop_time)

        # The event dispatch below is step() inlined: the loop dominates
        # every simulation's profile, and the per-event function call and
        # attribute lookups are a measurable fraction of its cost.
        heap = self._heap
        pop = heapq.heappop
        if stop_event is None and stop_time == float("inf"):
            # run to exhaustion: no stop conditions to test per event
            while heap:
                when, _prio, _seq, event = pop(heap)
                self.now = when
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
                if event._exc is not None and not event._defused:
                    raise event._exc
        else:
            while heap:
                if stop_event is not None and stop_event.callbacks is None:
                    return stop_event.value
                if heap[0][0] > stop_time:
                    self.now = stop_time
                    return None
                when, _prio, _seq, event = pop(heap)
                self.now = when
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
                if event._exc is not None and not event._defused:
                    raise event._exc

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            self._deadlock(
                "ran out of events before the awaited event fired")
        if stop_time != float("inf"):
            self.now = stop_time
        return None

    def _run_watched(self, stop_event: Optional[Event],
                     stop_time: float) -> object:
        """The watchdog variant of the event loop.

        Identical event order to :meth:`run`, but counts events
        processed since the last simulated-time advance and raises a
        diagnostic once the count exceeds ``stall_limit`` -- catching
        same-timestamp livelocks (e.g. two processes kicking each other
        with zero-delay events) that would otherwise spin forever.
        """
        limit = self.stall_limit
        heap = self._heap
        pop = heapq.heappop
        stalled = 0
        while heap:
            if stop_event is not None and stop_event.callbacks is None:
                return stop_event.value
            if heap[0][0] > stop_time:
                self.now = stop_time
                return None
            when, _prio, _seq, event = pop(heap)
            if when > self.now:
                stalled = 0
            else:
                stalled += 1
                if stalled > limit:
                    self._deadlock(
                        f"no simulated-time progress after {limit} "
                        f"events at t={self.now!r} (stall watchdog)")
            self.now = when
            callbacks, event.callbacks = event.callbacks, None
            for cb in callbacks:
                cb(event)
            if event._exc is not None and not event._defused:
                raise event._exc
        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            self._deadlock(
                "ran out of events before the awaited event fired")
        if stop_time != float("inf"):
            self.now = stop_time
        return None

    def _deadlock(self, headline: str) -> None:
        """Raise the richest deadlock diagnostic available.

        Delegates to :mod:`repro.obs.watchdog` (imported lazily: the
        kernel never pays for the observability layer until something
        already went wrong) to name the blocked threads, what each one
        waits on, and any wait-for cycle.
        """
        try:
            from repro.obs.watchdog import diagnose_deadlock
        except ImportError:  # pragma: no cover - partial installs
            raise SimulationDeadlock(headline) from None
        raise diagnose_deadlock(self, headline)

    def run_all(self, *processes: Process) -> float:
        """Convenience: run to exhaustion, assert the given processes all
        finished, and return the finish time."""
        self.run()
        for p in processes:
            if not p.triggered:
                self._deadlock(f"process {p.name} never finished")
            if not p.ok:  # re-raise the process failure
                p.value
        return self.now
