"""The load generator: determinism, factorial table, payload schema."""

import json
import random

from repro.obs.metrics import quantile
from repro.service import loadgen

from tests.service.conftest import run_async, serve_ctx


def test_mix_request_streams_are_seed_deterministic():
    def stream(seed, mix, n=25):
        rng = random.Random(seed)
        return [loadgen._mix_request(mix, rng, i) for i in range(n)]

    for mix in loadgen.MIXES:
        assert stream("0:a", mix) == stream("0:a", mix)
    assert stream("0:a", "scan") != stream("1:b", "scan")
    # hot requests stay inside the hot pool
    pool = {json.dumps(c, sort_keys=True) for c in loadgen.HOT_CELLS}
    for message in stream("0:a", "hot"):
        assert json.dumps(message["cells"][0], sort_keys=True) in pool


def test_latency_quantiles_interpolate():
    samples = [float(i) for i in range(1, 101)]  # 1..100
    assert quantile(samples, 0.0) == 1.0
    assert quantile(samples, 1.0) == 100.0
    assert quantile(samples, 0.5) == 50.5
    summary = loadgen._latency_summary(samples)
    assert summary["p50"] == 50.5
    assert summary["p99"] == 99.01
    assert summary["max"] == 100.0
    assert loadgen._latency_summary([])["p99"] is None


def test_run_load_factorial_payload():
    async def body():
        async with serve_ctx() as svc:
            payload = await loadgen.run_load(
                "127.0.0.1", svc.bound_port,
                mixes=["hot", "stats"], concurrencies=[1, 2],
                duration=0.3, seed=7)
            assert payload["schema"] == loadgen.SCHEMA
            assert payload["seed"] == 7 and payload["warm"]
            cells = payload["factor_cells"]
            # the full factorial: every mix x concurrency combination
            assert [(c["mix"], c["concurrency"]) for c in cells] == \
                [("hot", 1), ("hot", 2), ("stats", 1), ("stats", 2)]
            for cell in cells:
                assert cell["requests"] > 0
                assert cell["errors"] == 0
                assert cell["throughput_rps"] > 0
                assert cell["latency_ms"]["p50"] is not None
                assert cell["latency_ms"]["p50"] <= \
                    cell["latency_ms"]["p95"] <= \
                    cell["latency_ms"]["p99"]
            stats = payload["server_stats"]
            # the warm pass computed the hot pool; measured hot
            # requests then dedupe against cache or in-flight work
            assert stats["engine_cells"] == len(loadgen.HOT_CELLS)
            assert stats["dedupe_cached"] + \
                stats["dedupe_inflight"] > 0
            assert stats["batches"] > 0
            assert payload["server"]["schema"] == "repro-service/v1"
            # the whole payload must be JSON-serializable as-is
            assert json.loads(json.dumps(payload)) == payload
    run_async(body())


def test_load_cli_against_live_server(tmp_path, capsys):
    """`repro load --connect` end to end, writing BENCH_service.json."""
    import asyncio

    from repro.__main__ import main
    from repro.service.server import ReproService

    from tests.service.conftest import SCALES

    async def session():
        svc = ReproService(batch_window=0.01, **SCALES)
        await svc.start()
        out = tmp_path / "BENCH_service.json"
        status = await asyncio.to_thread(
            main, ["load", "--connect", f"127.0.0.1:{svc.bound_port}",
                   "--mix", "hot", "--concurrency", "1",
                   "--duration", "0.3", "--seed", "0",
                   "--json", str(out)])
        svc.request_shutdown("test")
        await svc.serve_until_shutdown()
        return status, out

    status, out = asyncio.run(asyncio.wait_for(session(), 120))
    assert status == 0
    text = capsys.readouterr().out
    assert "service load (seed 0" in text
    assert f"wrote {out}" in text
    payload = json.loads(out.read_text())
    assert payload["schema"] == loadgen.SCHEMA
    assert payload["factor_cells"][0]["mix"] == "hot"


def test_load_cli_rejects_bad_arguments(capsys):
    from repro.__main__ import main

    assert main(["load", "--connect", "nonsense"]) == 2
    assert main(["load", "--connect", "127.0.0.1:1",
                 "--concurrency", "x"]) == 2
    assert main(["load", "--connect", "127.0.0.1:1",
                 "--mix", "warp"]) == 2
    err = capsys.readouterr().err
    assert "HOST:PORT" in err and "unknown mix" in err


def test_load_cli_unreachable_server(capsys):
    from repro.__main__ import main

    # a port nothing listens on: report, do not traceback
    status = main(["load", "--connect", "127.0.0.1:1",
                   "--mix", "stats", "--duration", "0.1"])
    assert status == 2
    assert "cannot reach" in capsys.readouterr().err
