"""Applying a fault schedule to the macro machine models.

The macro models (:class:`~repro.mta.machine.MtaMachine`,
:class:`~repro.machines.machine.ConventionalMachine`) run a
:class:`~repro.workload.task.Job` whose steps are barriers: nothing of
step *k+1* starts before everything of step *k* finishes.  That makes
"a fault strikes mid-run" exactly equivalent to "split the job at the
fault's activation step and run the tail on a degraded machine" -- and
*that* formulation works identically under the pure-DES and vectorized
cohort engines, so fault injection inherits the engines' 1e-9
agreement instead of breaking it.

Derating is pure :func:`dataclasses.replace` on the frozen spec
dataclasses; the fault kinds map onto spec fields as documented in
DESIGN.md section 10.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional

from repro.faults.plan import (
    CONVENTIONAL_KINDS,
    MTA_KINDS,
    FaultPlan,
    ScheduledFault,
)
from repro.machines.machine import ConventionalMachine
from repro.machines.spec import MachineSpec, ThreadCosts
from repro.mta.machine import MtaMachine
from repro.mta.spec import MtaSpec
from repro.workload.task import Job


# ----------------------------------------------------------------------
# spec derating
# ----------------------------------------------------------------------

def _scaled_costs(costs: dict[str, ThreadCosts],
                  sync_factor: float) -> dict[str, ThreadCosts]:
    return {k: replace(c, sync_cycles=c.sync_cycles * sync_factor)
            for k, c in costs.items()}


def derate_mta(spec: MtaSpec,
               faults: Iterable[ScheduledFault]) -> MtaSpec:
    """The MTA spec with the given (active) faults applied.

    ``streams``: lose up to 90% of the hardware streams;
    ``bank-hotspot``: lose up to 80% of per-processor network bandwidth;
    ``febit-stall``: memory latency up to 4x, synchronization up to 21x.
    Other kinds do not apply and are ignored.
    """
    out = spec
    for f in faults:
        if f.kind == "streams":
            n = max(1, int(round(
                spec.streams_per_processor * (1.0 - 0.9 * f.severity))))
            out = replace(out, streams_per_processor=min(
                out.streams_per_processor, n))
        elif f.kind == "bank-hotspot":
            out = replace(out, network_words_per_cycle=(
                out.network_words_per_cycle * (1.0 - 0.8 * f.severity)))
        elif f.kind == "febit-stall":
            out = replace(
                out,
                mem_latency_cycles=out.mem_latency_cycles
                * (1.0 + 3.0 * f.severity),
                thread_costs=_scaled_costs(out.thread_costs,
                                           1.0 + 20.0 * f.severity))
    return out


def derate_conventional(spec: MachineSpec,
                        faults: Iterable[ScheduledFault]) -> MachineSpec:
    """The conventional-machine spec with the given faults applied.

    ``cache-ways``: lose up to ``assoc - 1`` ways (and the matching
    capacity); ``mem-latency``: miss latency up to 4x;
    ``bank-hotspot``: lose up to 80% of bus bandwidth.  Other kinds do
    not apply and are ignored.
    """
    out = spec
    for f in faults:
        if f.kind == "cache-ways":
            assoc = out.cache.assoc
            lost = int(round(f.severity * (assoc - 1)))
            new_assoc = max(1, assoc - lost)
            if new_assoc != assoc:
                out = replace(out, cache=replace(
                    out.cache, assoc=new_assoc,
                    capacity_bytes=out.cache.capacity_bytes
                    * new_assoc / assoc))
        elif f.kind == "mem-latency":
            out = replace(out, mem=replace(
                out.mem,
                miss_latency_s=out.mem.miss_latency_s
                * (1.0 + 3.0 * f.severity)))
        elif f.kind == "bank-hotspot":
            out = replace(out, mem=replace(
                out.mem,
                bandwidth_bytes_per_s=out.mem.bandwidth_bytes_per_s
                * (1.0 - 0.8 * f.severity)))
    return out


# ----------------------------------------------------------------------
# job splitting
# ----------------------------------------------------------------------

def split_job(job: Job, boundaries: Iterable[int]) -> list[Job]:
    """Split a job at the given step indices.

    A boundary ``b`` starts a new segment at step ``b``.  Boundaries
    outside ``(0, len(steps))`` and duplicates are ignored; with no
    effective boundary the job comes back whole (same object).
    Because steps are barriers, running the segments back to back is
    semantically identical to running the original job.
    """
    cuts = sorted({b for b in boundaries if 0 < b < len(job.steps)})
    if not cuts:
        return [job]
    out = []
    starts = [0] + cuts
    ends = cuts + [len(job.steps)]
    for i, (lo, hi) in enumerate(zip(starts, ends)):
        out.append(Job(name=f"{job.name}#seg{i}", steps=job.steps[lo:hi]))
    return out


# ----------------------------------------------------------------------
# faulted runs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultedRun:
    """Outcome of one fault-injected job run."""

    machine: str
    job: str
    seconds: float
    schedule: tuple[ScheduledFault, ...]
    applied: tuple[ScheduledFault, ...]   # kinds this machine honors
    n_segments: int
    stats: dict[str, float]


def _merge_stats(totals: dict[str, float], stats: dict[str, float]) -> None:
    for k, v in stats.items():
        totals[k] = totals.get(k, 0.0) + float(v)


def _attribution(applied: tuple[ScheduledFault, ...]) -> dict[str, float]:
    out = {"faults_injected": float(len(applied))}
    for f in applied:
        out[f"fault_{f.kind}_severity"] = f.severity
        out[f"fault_{f.kind}_step"] = float(f.step)
    return out


def _run_segments(job: Job, schedule: tuple[ScheduledFault, ...],
                  applied: tuple[ScheduledFault, ...],
                  machine_name: str, make_machine) -> FaultedRun:
    segments = split_job(job, (f.step for f in applied))
    seconds = 0.0
    totals: dict[str, float] = {}
    start = 0
    for seg in segments:
        active = tuple(f for f in applied if f.step <= start)
        result = make_machine(active).run(seg)
        seconds += result.seconds
        _merge_stats(totals, result.stats)
        totals["lock_wait_seconds"] = (
            totals.get("lock_wait_seconds", 0.0)
            + result.lock_wait_seconds)
        start += len(seg.steps)
    totals.update(_attribution(applied))
    return FaultedRun(machine=machine_name, job=job.name,
                      seconds=seconds, schedule=schedule,
                      applied=applied, n_segments=len(segments),
                      stats=totals)


def run_faulted_mta(spec: MtaSpec, job: Job, plan: FaultPlan, *,
                    slices_per_phase: int = 8,
                    use_cohort: Optional[bool] = None) -> FaultedRun:
    """Run ``job`` on the MTA under ``plan``'s faults."""
    schedule = plan.schedule(job.name, len(job.steps), spec.name)
    applied = tuple(f for f in schedule if f.kind in MTA_KINDS)
    return _run_segments(
        job, schedule, applied, spec.name,
        lambda active: MtaMachine(derate_mta(spec, active),
                                  slices_per_phase=slices_per_phase,
                                  use_cohort=use_cohort))


def run_faulted_conventional(spec: MachineSpec, job: Job,
                             plan: FaultPlan, *,
                             slices_per_phase: int = 16,
                             use_cohort: Optional[bool] = None
                             ) -> FaultedRun:
    """Run ``job`` on a conventional machine under ``plan``'s faults."""
    schedule = plan.schedule(job.name, len(job.steps), spec.name)
    applied = tuple(f for f in schedule if f.kind in CONVENTIONAL_KINDS)
    return _run_segments(
        job, schedule, applied, spec.name,
        lambda active: ConventionalMachine(
            derate_conventional(spec, active),
            slices_per_phase=slices_per_phase,
            use_cohort=use_cohort))
