"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table5" in out and "autopar" in out and "fig2" in out


def test_run_single_experiment(capsys):
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "run", "autopar"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Automatic parallelization" in out
    assert "PASS" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_table_with_small_kernels(capsys):
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "run", "table2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Alpha" in out and "Tera" in out


def test_trace_command_writes_valid_chrome_json(tmp_path, capsys):
    import json

    from repro.obs.trace import validate_chrome_trace

    out = str(tmp_path / "trace.json")
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "trace", "table2", "-o", out])
    stdout = capsys.readouterr().out
    assert code == 0
    assert "wrote" in stdout and "trace events" in stdout
    with open(out) as fh:
        obj = json.load(fh)
    assert validate_chrome_trace(obj) > 0
    # one trace process per simulated machine run, each named
    names = [e["args"]["name"] for e in obj["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert len(names) == 4 and any("Alpha" in n for n in names)


def test_trace_unknown_experiment(capsys):
    assert main(["trace", "table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_feedback_command(capsys):
    assert main(["feedback"]) == 0
    out = capsys.readouterr().out
    assert "ThreatAnalysis" in out
    assert "no practical opportunities" in out
    assert "Advisories" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_race_requires_target(capsys):
    assert main(["race"]) == 2
    assert "give experiment ids" in capsys.readouterr().err


def test_race_unknown_experiment(capsys):
    assert main(["race", "table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_race_clean_experiment_writes_report(tmp_path, capsys):
    import json

    out = str(tmp_path / "race.json")
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "race", "table2", "table9", "--json", out])
    stdout = capsys.readouterr().out
    assert code == 0
    assert "race detector" in stdout and "clean" in stdout
    with open(out) as fh:
        payload = json.load(fh)
    assert payload["schema"] == "repro-race-report/v1"
    assert payload["clean"] is True and payload["status"] == 0
    assert set(payload["experiments"]) == {"table2", "table9"}


def test_race_fixtures_all_flagged(capsys):
    code = main(["race", "--fixtures"])
    out = capsys.readouterr().out
    assert code == 0
    assert "FAIL" not in out
    for name in ("chunk-overlap", "dropped-lock", "skipped-writeef",
                 "barrier-mismatch", "overwrite-full"):
        assert name in out


def test_race_finding_exits_nonzero(monkeypatch, capsys):
    from repro.analysis import targets
    from repro.workload.builder import make_phase
    from repro.workload.ops import OpCounts, write_of
    from repro.workload.task import (
        Compute,
        Job,
        ParallelRegion,
        ThreadProgram,
    )

    def racy_job(_data):
        threads = tuple(
            ThreadProgram(f"t{i}", (Compute(make_phase(
                f"p{i}", OpCounts(ialu=10),
                accesses=(write_of("x", 0, 9),))),))
            for i in range(2))
        return Job("planted-racy", (ParallelRegion(threads),))

    monkeypatch.setitem(targets.EXPERIMENT_JOBS, "autopar", (racy_job,))
    code = main(["race", "autopar"])
    out = capsys.readouterr().out
    assert code == 1
    assert "data-race" in out


def test_race_alias_resolves(capsys):
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "race", "fig3", "--no-parity"])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_trace_default_output_path(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "trace", "table2"])
    assert code == 0
    assert (tmp_path / "trace-table2.json").exists()
    assert "trace-table2.json" in capsys.readouterr().out


def test_cache_info_and_clear(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    assert str(tmp_path / "cache") in out
    assert "entries:   0" in out
    assert "enabled:   yes" in out

    # populate via a real run, then inspect and clear
    assert main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "run", "table2"]) == 0
    capsys.readouterr()
    assert main(["cache", "info"]) == 0
    out = capsys.readouterr().out
    entries = int(out.split("entries:")[1].split()[0])
    assert entries > 0
    assert "epoch:" in out

    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert f"removed {entries} cached results" in out
    assert main(["cache", "info"]) == 0
    assert "entries:   0" in capsys.readouterr().out


def test_cache_info_reports_disabled(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert main(["cache", "info"]) == 0
    assert "no (REPRO_NO_CACHE)" in capsys.readouterr().out
