#!/usr/bin/env python3
"""Compiler feedback for the four benchmark programs (Sections 5-6).

Runs the automatic-parallelization model over the IR encodings of
Programs 1-4 and prints canal-style feedback: why each loop was or was
not parallelized.  The outcome matches the paper -- no practical
parallelism in either sequential program; the manually restructured
programs parallelize only at their explicit pragmas.

    python examples/autopar_report.py
"""

from repro.compiler import (
    parallelize,
    render_advisories,
    render_feedback,
    terrain_blocked_ir,
    terrain_sequential_ir,
    threat_chunked_ir,
    threat_sequential_ir,
)


def main() -> None:
    programs = [
        threat_sequential_ir(),
        threat_chunked_ir(with_pragma=True),
        threat_chunked_ir(with_pragma=False),
        terrain_sequential_ir(),
        terrain_blocked_ir(with_pragma=True),
        terrain_blocked_ir(with_pragma=False),
    ]
    labels = [
        "Program 1 (sequential Threat Analysis)",
        "Program 2 (chunked, with #pragma multithreaded)",
        "Program 2 without the pragma",
        "Program 3 (sequential Terrain Masking)",
        "Program 4 (blocked, with #pragma multithreaded)",
        "Program 4 without the pragma",
    ]
    for label, prog in zip(labels, programs):
        result = parallelize(prog)
        print("#" * 72)
        print(f"# {label}")
        print("#" * 72)
        print(render_feedback(result))
        print()
        print(render_advisories(result))
        print()


if __name__ == "__main__":
    main()
