"""Behavioural tests for the macro MTA performance model.

These verify the mechanisms that generate the paper's MTA results:
single-stream crawl, saturation with enough threads, network-bound
memory phases, fine-grained phases spreading across processors.
"""

import pytest

from repro.mta import MtaMachine, MtaSpec, mta
from repro.workload import (
    JobBuilder,
    OpCounts,
    ThreadProgramBuilder,
    make_phase,
    single_thread_job,
)


SPEC1 = mta(1)
SPEC2 = mta(2)


def alu_phase(name, n_ops):
    return make_phase(name, OpCounts(ialu=n_ops))


def chunked_job(phase, n_threads, kind="hw"):
    threads = [
        ThreadProgramBuilder(f"t{i}").phase(p).build()
        for i, p in enumerate(phase.split(n_threads))
    ]
    return JobBuilder("job").parallel(threads, thread_kind=kind).build()


def run_seconds(spec, job):
    return MtaMachine(spec).run(job).seconds


# ----------------------------------------------------------------------
# Sequential execution: the 21x crawl
# ----------------------------------------------------------------------

def test_single_thread_runs_at_one_per_21_cycles():
    n_ops = 21e6 * SPEC1.ops_per_instruction  # -> 21e6 instructions
    job = single_thread_job("seq", [alu_phase("p", n_ops)])
    secs = run_seconds(SPEC1, job)
    # 21e6 instructions at 1/21 of 255 MHz
    expected = 21e6 * 21 / 255e6
    assert secs == pytest.approx(expected, rel=0.01)


def test_memory_fraction_slows_a_single_stream_further():
    n = 30e6
    compute = single_thread_job("c", [make_phase("p", OpCounts(ialu=n))])
    memory = single_thread_job("m", [make_phase(
        "p", OpCounts(ialu=n * 0.7, load=n * 0.3), unique_bytes=1e9)])
    t_c = run_seconds(SPEC1, compute)
    t_m = run_seconds(SPEC1, memory)
    # same instruction count, but 30% loads add visible stall cycles
    assert t_m > t_c * 1.1


def test_sequential_same_on_one_or_two_processors():
    job = single_thread_job("seq", [alu_phase("p", 30e6)])
    assert run_seconds(SPEC1, job) == pytest.approx(
        run_seconds(SPEC2, job), rel=0.01)


# ----------------------------------------------------------------------
# Multithreaded saturation (Tables 5 and 6)
# ----------------------------------------------------------------------

def test_chunk_sweep_matches_table6_shape():
    """Halving from 8 chunks up, then flat once saturated."""
    phase = alu_phase("work", 420e6 * SPEC1.ops_per_instruction)
    times = {}
    for chunks in (8, 16, 32, 64, 128, 256):
        times[chunks] = run_seconds(SPEC2, chunked_job(phase, chunks))
    # below saturation each doubling halves the time
    assert times[8] / times[16] == pytest.approx(2.0, rel=0.05)
    assert times[16] / times[32] == pytest.approx(2.0, rel=0.05)
    # saturated region is flat
    assert times[128] == pytest.approx(times[256], rel=0.05)
    # hundreds of threads were needed
    assert times[8] > 5 * times[128]


def test_multithreaded_speedup_vs_sequential_exceeds_21():
    """The paper measures 32x; with memory stall in the sequential
    version the MT/sequential ratio exceeds the 21-cycle pipe depth.

    Mix: 10% of ops are loads -> with 3-op LIW packing, 0.3 memory
    references per instruction.  The saturated MT run is issue-bound
    (0.3 words/cycle < the 0.42 network capacity) at 1 instr/cycle,
    so the ratio is exactly the sequential stream interval.
    """
    n = 210e6
    ops_seq = OpCounts(ialu=n * 0.9, load=n * 0.1)
    seq = single_thread_job("seq", [make_phase("s", ops_seq,
                                               unique_bytes=1e9)])
    mt = chunked_job(make_phase("m", ops_seq, unique_bytes=1e9), 128)
    t_seq = run_seconds(SPEC1, seq)
    t_mt = run_seconds(SPEC1, mt)
    ratio = t_seq / t_mt
    assert ratio > 21
    mem_per_instr = 0.1 * SPEC1.ops_per_instruction
    assert ratio == pytest.approx(
        SPEC1.stream_interval_cycles(mem_per_instr), rel=0.1)


def test_two_processor_speedup_compute_bound():
    phase = alu_phase("work", 420e6)
    t1 = run_seconds(mta(1), chunked_job(phase, 256))
    t2 = run_seconds(mta(2), chunked_job(phase, 256))
    assert t1 / t2 == pytest.approx(2.0, rel=0.05)  # ALU-only: ideal


def test_two_processor_speedup_network_bound():
    """Memory-saturating workloads track the prototype network's
    sublinear scaling (the Terrain Masking 1.4x story)."""
    n = 420e6
    phase = make_phase("mem", OpCounts(ialu=n * 0.4, load=n * 0.6),
                       unique_bytes=1e9)
    t1 = run_seconds(mta(1), chunked_job(phase, 256))
    t2 = run_seconds(mta(2), chunked_job(phase, 256))
    speedup = t1 / t2
    expected = 2 ** MtaSpec().network_scaling_exponent  # ~1.45
    assert speedup == pytest.approx(expected, rel=0.08)
    assert speedup < 1.6


def test_network_utilization_reported():
    n = 420e6
    phase = make_phase("mem", OpCounts(load=n), unique_bytes=1e9)
    res = MtaMachine(mta(1)).run(chunked_job(phase, 256))
    assert res.network_utilization > 0.9
    res2 = MtaMachine(mta(1)).run(
        single_thread_job("c", [alu_phase("p", 1e6)]))
    assert res2.network_utilization == 0.0


# ----------------------------------------------------------------------
# Fine-grained phases (inner-loop parallelism)
# ----------------------------------------------------------------------

def test_fine_grained_phase_saturates_one_processor():
    n_ops = 210e6 * SPEC1.ops_per_instruction
    wide = single_thread_job("fg", [make_phase(
        "p", OpCounts(ialu=n_ops), parallelism=200)])
    secs = run_seconds(SPEC1, wide)
    assert secs == pytest.approx(210e6 / 255e6, rel=0.05)


def test_fine_grained_phase_spreads_across_processors():
    n_ops = 210e6 * SPEC1.ops_per_instruction
    wide = single_thread_job("fg", [make_phase(
        "p", OpCounts(ialu=n_ops), parallelism=400)])
    t1 = run_seconds(mta(1), wide)
    t2 = run_seconds(mta(2), wide)
    assert t1 / t2 == pytest.approx(2.0, rel=0.05)


def test_narrow_parallelism_limits_rate():
    """parallelism=4 gives at most 4 streams' issue rate."""
    n_instr = 4e6
    n_ops = n_instr * SPEC1.ops_per_instruction
    job = single_thread_job("fg4", [make_phase(
        "p", OpCounts(ialu=n_ops), parallelism=4)])
    secs = run_seconds(SPEC1, job)
    expected = n_instr * 21 / (4 * 255e6)
    assert secs == pytest.approx(expected, rel=0.05)


def test_serial_cycles_bound_fine_grained_phase():
    """Critical-path latency is not hidden by width."""
    job = single_thread_job("fg", [make_phase(
        "p", OpCounts(ialu=1e6), parallelism=10_000,
        serial_cycles=255e6)])  # one second of unoverlappable latency
    secs = run_seconds(SPEC2, job)
    assert secs > 1.0


# ----------------------------------------------------------------------
# Thread costs and regions
# ----------------------------------------------------------------------

def test_hw_thread_creation_is_cheap():
    phase = alu_phase("w", 21e6)
    t_few = run_seconds(SPEC1, chunked_job(phase, 8, kind="hw"))
    # same work split into 10x the threads: creation diff negligible
    t_many = run_seconds(SPEC1, chunked_job(phase, 128, kind="hw"))
    assert t_many < t_few  # more threads = faster (saturation)


def test_sw_threads_slightly_more_expensive_than_hw():
    phase = alu_phase("w", 1e4)  # tiny work: creation visible
    t_hw = run_seconds(SPEC1, chunked_job(phase, 100, kind="hw"))
    t_sw = run_seconds(SPEC1, chunked_job(phase, 100, kind="sw"))
    assert t_sw > t_hw


def test_work_queue_region_runs_all_items():
    items = [
        ThreadProgramBuilder(f"i{k}")
        .phase(alu_phase("w", 21e5))
        .build_work_item()
        for k in range(30)
    ]
    job = JobBuilder("queue").work_queue(items, n_threads=10,
                                         thread_kind="hw").build()
    res = MtaMachine(SPEC1).run(job)
    assert res.seconds > 0
    assert res.n_threads_peak == 10


def test_critical_sections_serialize_on_mta_too():
    inner = alu_phase("cs", 21e6 * 3)
    threads = [
        ThreadProgramBuilder(f"t{i}").critical_phase("L", inner).build()
        for i in range(4)
    ]
    job = JobBuilder("locked").parallel(threads, thread_kind="hw").build()
    res = MtaMachine(SPEC1).run(job)
    assert res.lock_wait_seconds > 0
    # serialized: 4 critical sections each ~21e6*3/3 instr at 1/21...
    single = MtaMachine(SPEC1).run(
        JobBuilder("one").parallel([threads[0]], thread_kind="hw").build())
    assert res.seconds == pytest.approx(4 * single.seconds, rel=0.1)


def test_invalid_slices_rejected():
    with pytest.raises(ValueError):
        MtaMachine(SPEC1, slices_per_phase=0)
