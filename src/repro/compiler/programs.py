"""IR encodings of the paper's Programs 1-4.

These mirror the pseudocode in Sections 5 and 6 closely enough for the
dependence analysis to trip over exactly the constructs the paper
blames: the shared ``num_intervals``/``intervals`` variables, the
time-stepped ``while`` simulations, overlapping ``masking`` regions
with call-dependent bounds, and pointer/call-laden expressions.
"""

from __future__ import annotations

from repro.compiler.loopir import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    ForLoop,
    Program,
    VarRef,
    WhileLoop,
)


def _v(name: str) -> VarRef:
    return VarRef(name)


def _minus1(e) -> BinOp:
    return BinOp("-", e, Const(1))


# ----------------------------------------------------------------------
# Program 1: sequential Threat Analysis
# ----------------------------------------------------------------------

def threat_sequential_ir() -> Program:
    """Program 1 of the paper."""
    inner_while = WhileLoop(
        label="while (weapon can intercept threat)",
        cond=Call("can_intercept",
                  (_v("weapon"), _v("threat"), _v("t0"), _v("impact"))),
        body=(
            Assign(_v("t1"), Call("first_intercept_time",
                                  (_v("weapon"), _v("threat"), _v("t0")))),
            Assign(_v("t2"), Call("last_intercept_time",
                                  (_v("weapon"), _v("threat"), _v("t1")))),
            Assign(ArrayRef("intervals", (_v("num_intervals"),)),
                   Call("make_interval",
                        (_v("threat"), _v("weapon"), _v("t1"), _v("t2")),
                        pure=True)),
            Assign(_v("num_intervals"),
                   BinOp("+", _v("num_intervals"), Const(1))),
            Assign(_v("t0"), BinOp("+", _v("t2"), Const(1))),
        ),
    )
    weapon_loop = ForLoop(
        label="for weapon", var="weapon",
        lower=Const(0), upper=_minus1(_v("num_weapons")),
        body=(
            Assign(_v("t0"),
                   Call("initial_detection_time",
                        (ArrayRef("threats", (_v("threat"),)),))),
            inner_while,
        ),
    )
    threat_loop = ForLoop(
        label="for threat", var="threat",
        lower=Const(0), upper=_minus1(_v("num_threats")),
        body=(weapon_loop,),
    )
    return Program(
        name="ThreatAnalysis (sequential)",
        params=("num_threats", "threats", "num_weapons", "weapons",
                "num_intervals", "intervals"),
        body=(Assign(_v("num_intervals"), Const(0)), threat_loop),
        source_note="Program 1 of Brunett et al., SC'98",
    )


# ----------------------------------------------------------------------
# Program 2: chunked multithreaded Threat Analysis
# ----------------------------------------------------------------------

def threat_chunked_ir(with_pragma: bool = True) -> Program:
    """Program 2 of the paper (the manual restructuring)."""
    inner_while = WhileLoop(
        label="while (weapon can intercept threat)",
        cond=Call("can_intercept",
                  (_v("weapon"), _v("threat"), _v("t0"), _v("impact"))),
        body=(
            Assign(_v("t1"), Call("first_intercept_time",
                                  (_v("weapon"), _v("threat"), _v("t0")))),
            Assign(_v("t2"), Call("last_intercept_time",
                                  (_v("weapon"), _v("threat"), _v("t1")))),
            Assign(ArrayRef("intervals",
                            (_v("chunk"),
                             ArrayRef("num_intervals", (_v("chunk"),)))),
                   Call("make_interval",
                        (_v("threat"), _v("weapon"), _v("t1"), _v("t2")),
                        pure=True)),
            Assign(ArrayRef("num_intervals", (_v("chunk"),)),
                   BinOp("+", ArrayRef("num_intervals", (_v("chunk"),)),
                         Const(1))),
            Assign(_v("t0"), BinOp("+", _v("t2"), Const(1))),
        ),
    )
    weapon_loop = ForLoop(
        label="for weapon", var="weapon",
        lower=Const(0), upper=_minus1(_v("num_weapons")),
        body=(
            Assign(_v("t0"),
                   Call("initial_detection_time",
                        (ArrayRef("threats", (_v("threat"),)),))),
            inner_while,
        ),
    )
    threat_loop = ForLoop(
        label="for threat (chunk subrange)", var="threat",
        lower=_v("first_threat"), upper=_v("last_threat"),
        body=(weapon_loop,),
    )
    chunk_loop = ForLoop(
        label="for chunk", var="chunk",
        lower=Const(0), upper=_minus1(_v("num_chunks")),
        pragma_parallel=with_pragma,
        body=(
            Assign(_v("first_threat"),
                   BinOp("/", BinOp("*", _v("chunk"), _v("num_threats")),
                         _v("num_chunks"))),
            Assign(_v("last_threat"),
                   _minus1(BinOp("/",
                                 BinOp("*",
                                       BinOp("+", _v("chunk"), Const(1)),
                                       _v("num_threats")),
                                 _v("num_chunks")))),
            Assign(ArrayRef("num_intervals", (_v("chunk"),)), Const(0)),
            threat_loop,
        ),
    )
    return Program(
        name="ThreatAnalysis (chunked multithreaded)",
        params=("num_threats", "threats", "num_weapons", "weapons",
                "num_chunks", "num_intervals", "intervals"),
        body=(chunk_loop,),
        source_note="Program 2 of Brunett et al., SC'98",
    )


# ----------------------------------------------------------------------
# Program 3: sequential Terrain Masking
# ----------------------------------------------------------------------

#: the linearised 2-D subscript the real C code uses: x * y_size + y.
#: A product of two symbols is beyond the affine recogniser -- the
#: paper's "non-trivial index expressions" obstacle, verbatim.
def _lin() -> BinOp:
    return BinOp("+", BinOp("*", _v("x"), _v("y_size")), _v("y"))


def _region_loop(label: str, body) -> ForLoop:
    """``for (x, y = region of influence of threat)``: nested x/y loops
    whose bounds come from calls on the current threat."""
    threat_ref = ArrayRef("threats", (_v("threat"),))
    inner = ForLoop(
        label=f"{label} (y)", var="y",
        lower=Call("region_y_lo", (threat_ref, _v("x"))),
        upper=Call("region_y_hi", (threat_ref, _v("x"))),
        body=tuple(body),
    )
    return ForLoop(
        label=label, var="x",
        lower=Call("region_x_lo", (threat_ref,)),
        upper=Call("region_x_hi", (threat_ref,)),
        body=(inner,),
    )


def terrain_sequential_ir() -> Program:
    """Program 3 of the paper."""
    init = CallStmt("initialize_to_infinity",
                    (_v("masking"), _v("x_size"), _v("y_size")),
                    writes_args=(0,))
    threat_loop = ForLoop(
        label="for threat", var="threat",
        lower=Const(0), upper=_minus1(_v("num_threats")),
        body=(
            _region_loop("copy masking into temp", [
                Assign(ArrayRef("temp", (_lin(),)),
                       ArrayRef("masking", (_lin(),))),
            ]),
            _region_loop("reset masking region", [
                Assign(ArrayRef("masking", (_lin(),)),
                       Const(float("inf"))),
            ]),
            _region_loop("compute safe altitude", [
                Assign(ArrayRef("masking", (_lin(),)),
                       Call("max_safe_altitude",
                            (_v("terrain"),
                             ArrayRef("threats", (_v("threat"),)),
                             _lin(),
                             _v("masking")))),
            ]),
            _region_loop("minimize into result", [
                Assign(ArrayRef("masking", (_lin(),)),
                       Call("min", (ArrayRef("masking", (_lin(),)),
                                    ArrayRef("temp", (_lin(),))),
                            pure=True)),
            ]),
        ),
    )
    return Program(
        name="TerrainMasking (sequential)",
        params=("x_size", "y_size", "terrain", "num_threats", "threats",
                "masking"),
        body=(init, threat_loop),
        source_note="Program 3 of Brunett et al., SC'98",
    )


# ----------------------------------------------------------------------
# Program 4: coarse-grained multithreaded Terrain Masking
# ----------------------------------------------------------------------

def terrain_blocked_ir(with_pragma: bool = True) -> Program:
    """Program 4 of the paper."""
    work_while = WhileLoop(
        label="while (unprocessed threats)",
        cond=Call("unprocessed_threats", ()),
        body=(
            Assign(_v("threat"), Call("next_unprocessed_threat", ())),
            _region_loop("reset temp region", [
                Assign(ArrayRef("temp", (_v("thread"), _lin())),
                       Const(float("inf"))),
            ]),
            _region_loop("compute safe altitude into temp", [
                Assign(ArrayRef("temp", (_v("thread"), _lin())),
                       Call("max_safe_altitude",
                            (_v("terrain"),
                             ArrayRef("threats", (_v("threat"),)),
                             _lin(),
                             ArrayRef("temp", (_v("thread"),))))),
            ]),
            ForLoop(
                label="for blocks overlapping threat", var="b",
                lower=Call("first_block", (_v("threat"),)),
                upper=Call("last_block", (_v("threat"),)),
                body=(
                    CallStmt("lock", (ArrayRef("locks", (_v("b"),)),),
                             writes_args=(0,)),
                    _region_loop("min temp into masking block", [
                        Assign(ArrayRef("masking", (_lin(),)),
                               Call("min",
                                    (ArrayRef("masking", (_lin(),)),
                                     ArrayRef("temp",
                                              (_v("thread"), _lin()))),
                                    pure=True)),
                    ]),
                    CallStmt("unlock", (ArrayRef("locks", (_v("b"),)),),
                             writes_args=(0,)),
                ),
            ),
        ),
    )
    thread_loop = ForLoop(
        label="for thread", var="thread",
        lower=Const(0), upper=_minus1(_v("num_threads")),
        pragma_parallel=with_pragma,
        body=(work_while,),
    )
    init = CallStmt("initialize_blocks_and_masking",
                    (_v("blocks"), _v("masking"), _v("x_size"),
                     _v("y_size")),
                    writes_args=(0, 1))
    return Program(
        name="TerrainMasking (coarse-grained multithreaded)",
        params=("x_size", "y_size", "terrain", "num_threats", "threats",
                "num_blocks", "num_threads", "masking"),
        body=(init, thread_loop),
        source_note="Program 4 of Brunett et al., SC'98",
    )
