"""The Tera programming-system surface: futures, sync variables,
parallel loops.

This module is the model of what Section 2 of the paper lists as the
programming system: explicit thread creation with *futures*,
full/empty *synchronization variables*, and ``#pragma multithreaded``
parallel loops, with the MTA's cost structure (hardware-stream creation
2 cycles, software threads 50-100 cycles, synchronization 1 cycle).

Programs written against :class:`TeraRuntime` are DES process
generators; simulated time advances in MTA cycles.  The C3I fine-
grained program variants and several examples are expressed this way::

    rt = TeraRuntime()

    def producer(rt, cell):
        yield rt.cycles(100)          # compute something
        yield cell.write("result")    # full/empty write: 1 cycle

    def consumer(rt, cell):
        value = yield cell.read()     # blocks until full
        return value

    cell = rt.sync_variable()
    rt.future(producer, cell)
    f = rt.future(consumer, cell)
    rt.run()
    assert f.value() == "result"
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Optional

from repro.des import AllOf, Event, FullEmptyCell, Process, Simulator
from repro.mta.spec import MTA_2, MtaSpec


class SyncVariable:
    """A full/empty synchronization variable (``sync$`` in Tera C).

    Reads wait for full and set empty; writes wait for empty and set
    full.  Each access costs one cycle of simulated time -- the paper's
    "thread synchronization in one cycle".
    """

    def __init__(self, runtime: "TeraRuntime", value: object = None,
                 full: bool = False, name: str = "sync$"):
        self._rt = runtime
        self._cell = FullEmptyCell(runtime.sim, value=value, full=full,
                                   name=name)

    @property
    def is_full(self) -> bool:
        return self._cell.is_full

    def peek(self) -> object:
        return self._cell.peek()

    def read(self) -> Event:
        """Wait-until-full, read, set empty (plus the 1-cycle access)."""
        return self._rt._after_cost(self._cell.read_fe())

    def write(self, value: object) -> Event:
        """Wait-until-empty, write, set full (plus the 1-cycle access)."""
        return self._rt._after_cost(self._cell.write_ef(value))

    def read_ff(self) -> Event:
        """Wait-until-full, read, leave full."""
        return self._rt._after_cost(self._cell.read_ff())

    def reset(self, value: object = None, full: bool = False) -> None:
        """Reinitialise (the ``purge`` operation)."""
        self._cell.reset_empty()
        if full:
            self._cell._value = value
            self._cell._full = True


class Future:
    """An asynchronously executing body whose result can be touched.

    Created via :meth:`TeraRuntime.future`; touching (:meth:`get`)
    blocks the toucher until the body has returned -- implemented, as
    on the real machine, with a full/empty cell.
    """

    def __init__(self, runtime: "TeraRuntime", process: Process):
        self._rt = runtime
        self._process = process

    def get(self) -> Event:
        """Touch the future: an event carrying the body's return value."""
        if self._process.processed:
            done = Event(self._rt.sim)
            done.succeed(self._process.value)
            return self._rt._after_cost(done)
        return self._rt._after_cost(self._process)

    def value(self) -> object:
        """The result, once the simulation has run (raises if not done)."""
        return self._process.value

    @property
    def is_done(self) -> bool:
        return self._process.triggered


class TeraRuntime:
    """Executes explicitly multithreaded programs with MTA costs."""

    def __init__(self, spec: MtaSpec = MTA_2):
        self.spec = spec
        self.sim = Simulator()
        self._cycle_s = 1.0 / spec.clock_hz
        self._top_level: list[Process] = []

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def cycles(self, n: float) -> Event:
        """An event firing ``n`` MTA cycles from now."""
        return self.sim.timeout(n * self._cycle_s)

    @property
    def now_cycles(self) -> float:
        return self.sim.now / self._cycle_s

    def _after_cost(self, event: Event, cycles: float = 1.0) -> Event:
        """Chain the synchronization access cost after ``event``."""
        sim = self.sim
        out = Event(sim)

        def relay(ev: Event) -> None:
            if not ev.ok:
                ev._mark_defused()
                out.fail(ev._exc)
                return
            delayed = sim.timeout(cycles * self._cycle_s, value=ev._value)
            delayed.callbacks.append(
                lambda d: out.succeed(d._value))

        if event.processed:
            relay(event)
        else:
            event.callbacks.append(relay)
        return out

    # ------------------------------------------------------------------
    # threads
    # ------------------------------------------------------------------
    def sync_variable(self, value: object = None, full: bool = False,
                      name: str = "sync$") -> SyncVariable:
        return SyncVariable(self, value=value, full=full, name=name)

    def future(self, body: Callable[..., Generator], *args: object,
               name: Optional[str] = None) -> Future:
        """Spawn a software thread (future): 75-cycle creation cost."""
        return self._spawn(body, args, self.spec.costs_for("sw")
                           .create_cycles, name)

    def hw_thread(self, body: Callable[..., Generator], *args: object,
                  name: Optional[str] = None) -> Future:
        """Spawn a compiler-style hardware stream: 2-cycle creation."""
        return self._spawn(body, args, self.spec.costs_for("hw")
                           .create_cycles, name)

    def _spawn(self, body, args, create_cycles: float,
               name: Optional[str]) -> Future:
        def wrapper():
            yield self.cycles(create_cycles)
            result = yield from body(self, *args)
            return result

        p = self.sim.process(wrapper(), name=name or body.__name__)
        self._top_level.append(p)
        return Future(self, p)

    def parallel_for(self, indices: Iterable[int],
                     body: Callable[..., Generator],
                     thread_kind: str = "hw") -> Event:
        """``#pragma multithreaded`` loop: one thread per index.

        Returns an event firing when every iteration has finished.
        ``body(runtime, index)`` must be a process generator.
        """
        spawn = self.hw_thread if thread_kind == "hw" else self.future
        futures = [spawn(body, i, name=f"iter-{i}") for i in indices]
        return AllOf(self.sim, [f._process for f in futures])

    # ------------------------------------------------------------------
    def run(self, until: Optional[float | Event] = None) -> float:
        """Run the simulation; returns elapsed cycles."""
        self.sim.run(until)
        for p in self._top_level:
            if p.triggered and not p.ok:
                p.value  # re-raise
        return self.now_cycles


#: Backwards-compatible alias used by some callers/builders.
ParallelForBuilder = TeraRuntime
