"""Machine specification dataclasses."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CoreSpec:
    """One CPU core's timing parameters.

    ``op_cycles`` maps op-class names (see
    :class:`~repro.workload.ops.OpCounts`) to average cycles per
    operation *assuming cache hits*; cache misses are charged separately
    by the memory system.  The values fold in issue width, typical
    dependence stalls and branch behaviour -- they are effective CPIs,
    not datasheet latencies.
    """

    clock_hz: float
    op_cycles: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        for name, v in self.op_cycles.items():
            if v < 0:
                raise ValueError(f"negative op cycle cost {name}={v}")

    def compute_cycles(self, ops: "OpCounts") -> float:  # noqa: F821
        return ops.weighted_cycles(self.op_cycles)


@dataclass(frozen=True)
class CacheSpec:
    """Effective cache parameters (the outermost level that matters)."""

    capacity_bytes: float
    line_bytes: int = 64
    assoc: int = 4
    hit_cycles: float = 2.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        if self.assoc < 1:
            raise ValueError("assoc must be >= 1")


@dataclass(frozen=True)
class MemSpec:
    """Shared-memory system parameters.

    ``bandwidth_bytes_per_s`` is the sustainable aggregate bandwidth of
    the bus/crossbar.  ``miss_latency_s`` bounds what a single in-order
    CPU can pull: with one outstanding miss, its private ceiling is
    ``line_bytes / miss_latency_s``.
    """

    bandwidth_bytes_per_s: float
    miss_latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.miss_latency_s <= 0:
            raise ValueError("miss latency must be positive")


@dataclass(frozen=True)
class ThreadCosts:
    """Creation/termination and synchronization costs in cycles.

    The paper's numbers: OS threads cost tens of thousands to hundreds
    of thousands of cycles to create and hundreds to thousands to
    synchronize on conventional machines; on the Tera MTA
    compiler-created hardware streams cost 2 cycles, programmer-created
    software threads 50-100, and synchronization 1.
    """

    create_cycles: float
    sync_cycles: float

    def __post_init__(self) -> None:
        if self.create_cycles < 0 or self.sync_cycles < 0:
            raise ValueError("thread costs must be >= 0")


@dataclass(frozen=True)
class MachineSpec:
    """A complete conventional shared-memory machine."""

    name: str
    n_cpus: int
    core: CoreSpec
    cache: CacheSpec
    mem: MemSpec
    #: cost table per thread kind ("os" | "sw" | "hw")
    thread_costs: dict[str, ThreadCosts] = field(default_factory=dict)
    #: installed physical memory (Table 1 of the paper)
    memory_bytes: float = 512.0 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")

    def with_cpus(self, n: int) -> "MachineSpec":
        """The same machine restricted/extended to ``n`` CPUs (the paper
        measures 1..16-processor subsets of the Exemplar)."""
        return replace(self, n_cpus=n, name=f"{self.name}[{n}p]")

    def costs_for(self, kind: str) -> ThreadCosts:
        """Cost row for a thread kind, falling back to the most expensive
        row the machine has (a conventional machine asked for "hw"
        threads gives you OS threads -- there is nothing cheaper)."""
        if kind in self.thread_costs:
            return self.thread_costs[kind]
        if "os" in self.thread_costs:
            return self.thread_costs["os"]
        raise KeyError(f"{self.name}: no thread cost table for {kind!r}")

    @property
    def per_cpu_mem_bandwidth(self) -> float:
        """One in-order CPU's private memory-bandwidth ceiling."""
        return self.cache.line_bytes / self.mem.miss_latency_s
