"""Tests for the persistent content-addressed simulation-result cache.

Covers the ISSUE-1 contract: cached and uncached runs are bit
identical, keys react to every input that matters (spec, scale, seed),
corrupt entries are discarded rather than crashed on or trusted, and
multiple processes can share one cache directory.
"""

from __future__ import annotations

import dataclasses
import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.harness import store
from repro.harness.runner import BenchmarkData
from repro.machines import ppro
from repro.workload.phase import AccessPattern

THREAT_SCALE = 0.01
TERRAIN_SCALE = 0.025


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    d = tmp_path / "cache"
    monkeypatch.setenv(store.CACHE_DIR_ENV, str(d))
    monkeypatch.delenv(store.NO_CACHE_ENV, raising=False)
    return d


def _data(**kwargs) -> BenchmarkData:
    kwargs.setdefault("threat_scale", THREAT_SCALE)
    kwargs.setdefault("terrain_scale", TERRAIN_SCALE)
    return BenchmarkData(**kwargs)


def _run(data: BenchmarkData, n_cpus: int = 2) -> float:
    return data.run_conventional(
        ppro(n_cpus), data.threat_chunked_job(2))


def _entries(d) -> list[str]:
    return sorted(p.name for p in d.glob("*.json")) if d.exists() else []


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------

def test_fingerprint_is_order_and_type_canonical():
    assert (store.fingerprint({"a": 1, "b": 2.0})
            == store.fingerprint({"b": 2.0, "a": 1}))
    assert store.fingerprint(1) != store.fingerprint(1.0)
    assert store.fingerprint((1, 2)) == store.fingerprint([1, 2])
    assert store.fingerprint("ab") != store.fingerprint(("a", "b"))
    assert (store.fingerprint(AccessPattern.RANDOM)
            != store.fingerprint(AccessPattern.STRIDED))


def test_fingerprint_distinguishes_float_bit_patterns():
    assert 0.1 + 0.2 != 0.3  # the motivating example
    assert store.fingerprint(0.1 + 0.2) != store.fingerprint(0.3)


def test_fingerprint_sees_every_dataclass_field():
    base = ppro(2)
    bumped = dataclasses.replace(
        base, mem=dataclasses.replace(
            base.mem,
            bandwidth_bytes_per_s=base.mem.bandwidth_bytes_per_s * 1.25))
    assert store.fingerprint(base) == store.fingerprint(ppro(2))
    assert store.fingerprint(base) != store.fingerprint(bumped)


def test_fingerprint_rejects_unknown_types():
    with pytest.raises(TypeError):
        store.fingerprint(object())


# ----------------------------------------------------------------------
# bit-identical results, hit/miss accounting, escape hatch
# ----------------------------------------------------------------------

def test_cached_and_uncached_runs_bit_identical(cache_dir, monkeypatch):
    monkeypatch.setenv(store.NO_CACHE_ENV, "1")
    reference = _run(_data())
    assert _entries(cache_dir) == []  # escape hatch: nothing written

    monkeypatch.delenv(store.NO_CACHE_ENV)
    miss_value = _run(_data())       # cold: simulates, writes
    hit_value = _run(_data())        # fresh BenchmarkData: disk hit
    assert miss_value == reference   # exact, not approx
    assert hit_value == reference
    assert len(_entries(cache_dir)) == 1

    cache = store.active_cache()
    assert cache is not None
    assert cache.hits >= 1 and cache.misses >= 1


def test_memo_skips_disk_on_repeat_calls(cache_dir):
    data = _data()
    first = _run(data)
    cache = store.active_cache()
    hits_before = cache.hits
    assert _run(data) == first       # same BenchmarkData: in-memory
    assert cache.hits == hits_before


# ----------------------------------------------------------------------
# key sensitivity
# ----------------------------------------------------------------------

def test_cache_keys_change_with_spec_scale_and_seed(cache_dir):
    _run(_data(), n_cpus=2)
    assert len(_entries(cache_dir)) == 1
    _run(_data(), n_cpus=4)                      # different machine spec
    assert len(_entries(cache_dir)) == 2
    _run(_data(threat_scale=0.015), n_cpus=2)    # different kernel scale
    assert len(_entries(cache_dir)) == 3
    _run(_data(seed_offset=1), n_cpus=2)         # different scenario seed
    assert len(_entries(cache_dir)) == 4
    _run(_data(), n_cpus=2)                      # repeat: all hits
    assert len(_entries(cache_dir)) == 4


# ----------------------------------------------------------------------
# corruption tolerance
# ----------------------------------------------------------------------

@pytest.mark.parametrize("garbage", [
    "",                                      # truncated to nothing
    "{not json",                             # unparsable
    "[1, 2, 3]",                             # wrong shape
    '{"schema": 999, "seconds": 1.0}',       # future schema
    '{"schema": 1, "seconds": "fast"}',      # wrong value type
])
def test_corrupt_entries_discarded_not_crashed(cache_dir, garbage):
    reference = _run(_data())
    (entry,) = _entries(cache_dir)
    (cache_dir / entry).write_text(garbage, encoding="utf-8")
    assert _run(_data()) == reference        # recomputed, not crashed
    payload = json.loads((cache_dir / entry).read_text(encoding="utf-8"))
    assert payload["seconds"] == reference   # entry rebuilt intact


def test_entry_copied_to_wrong_key_is_discarded(cache_dir):
    """A checksum-valid entry under the wrong key must not be served.

    The payload checksum only proves the file is internally
    consistent; a cache file copied or renamed onto another key's path
    (rsync mishap, hand-managed cache dirs) would otherwise return the
    wrong simulation's seconds with a perfectly valid checksum.
    """
    small = _run(_data())
    large = _run(_data(threat_scale=0.015))
    assert small != large
    entry_a, entry_b = _entries(cache_dir)
    # clobber B's entry with A's (checksum still valid, key embedded
    # inside now disagrees with the filename-derived lookup key)
    payload_a = (cache_dir / entry_a).read_text(encoding="utf-8")
    (cache_dir / entry_b).write_text(payload_a, encoding="utf-8")

    cache = store.ResultCache(str(cache_dir))
    key_b = entry_b[:-len(".json")]
    assert cache.get(key_b) is None          # mismatch = miss
    assert cache.corrupt == 1                # ... and counted
    assert not (cache_dir / entry_b).exists()  # ... and discarded

    # end to end: both runs still resolve to their correct values
    assert _run(_data()) == small
    assert _run(_data(threat_scale=0.015)) == large


# ----------------------------------------------------------------------
# multi-process sharing
# ----------------------------------------------------------------------

def _worker(directory: str) -> float:
    os.environ[store.CACHE_DIR_ENV] = directory
    os.environ.pop(store.NO_CACHE_ENV, None)
    return _run(_data())


def test_two_processes_share_one_cache_directory(cache_dir):
    with ProcessPoolExecutor(max_workers=2) as pool:
        a, b = pool.map(_worker, [str(cache_dir)] * 2)
    assert a == b
    assert len(_entries(cache_dir)) == 1
    assert _run(_data()) == a                # parent reads their entry


# ----------------------------------------------------------------------
# maintenance surface used by `python -m repro cache`
# ----------------------------------------------------------------------

def test_info_and_clear(cache_dir):
    _run(_data(), n_cpus=2)
    _run(_data(), n_cpus=4)
    cache = store.ResultCache(str(cache_dir))
    info = cache.info()
    assert info["entries"] == 2 and info["bytes"] > 0
    assert cache.clear() == 2
    assert cache.info()["entries"] == 0
