#!/usr/bin/env python3
"""Would *your* program have liked the Tera MTA?

The machine models are general: describe any program as phases
(operation mix + memory locality + available parallelism) and run it
on every platform of the paper.  This example evaluates three classic
kernels the paper never measured:

* dense matrix multiply (blocked): compute-bound, cache-friendly,
  embarrassingly parallel -- everyone's best case;
* sparse matrix-vector product: memory-bound with scattered access --
  the SMPs' nightmare and the flat-memory MTA's favourite;
* a wavefront stencil (like Terrain Masking's rings): fine-grained
  parallelism only -- practical on the MTA alone.

    python examples/port_your_own_kernel.py
"""

from repro.machines import ALPHASTATION_500, ConventionalMachine, exemplar
from repro.mta import MtaMachine, mta
from repro.workload import (
    AccessPattern,
    JobBuilder,
    OpCounts,
    ThreadProgramBuilder,
    make_phase,
    single_thread_job,
)


def matmul_job(n=1200, n_threads=16):
    """Blocked dense matmul C = A x B, one thread per block row."""
    flops = 2.0 * n ** 3
    ops = OpCounts(falu=flops, ialu=flops * 0.3, load=flops * 0.15,
                   store=flops * 0.01, branch=flops * 0.05)
    phase = make_phase("matmul", ops,
                       unique_bytes=3 * 64 * 64 * 8.0,  # blocks in cache
                       pattern=AccessPattern.SEQUENTIAL,
                       parallelism=n / 64)
    threads = [ThreadProgramBuilder(f"rowblk{i}").phase(p).build()
               for i, p in enumerate(phase.split(n_threads))]
    return JobBuilder("dense-matmul").parallel(threads).build()


def spmv_job(nnz=4e8, n_threads=16):
    """Sparse matrix-vector product: one gather per nonzero."""
    ops = OpCounts(falu=2 * nnz, ialu=2 * nnz, load=3 * nnz,
                   store=0.02 * nnz, branch=0.5 * nnz)
    phase = make_phase("spmv", ops,
                       unique_bytes=nnz * 12.0,   # matrix streamed
                       pattern=AccessPattern.RANDOM,
                       parallelism=1e4)
    threads = [ThreadProgramBuilder(f"strip{i}").phase(p).build()
               for i, p in enumerate(phase.split(n_threads))]
    return JobBuilder("spmv").parallel(threads).build()


def wavefront_job(n=4000, sweeps=60):
    """A 2-D wavefront stencil: anti-diagonals are parallel, the
    diagonal sequence is not -- inner-loop parallelism only."""
    cells = float(n * n * sweeps)
    ops = OpCounts(falu=6 * cells, ialu=4 * cells, load=3 * cells,
                   store=1 * cells, branch=1 * cells)
    phase = make_phase(
        "wavefront", ops,
        unique_bytes=n * n * 8.0,
        pattern=AccessPattern.SEQUENTIAL,
        parallelism=n / 2,                    # mean anti-diagonal width
        serial_cycles=2.0 * n * sweeps * 40,  # diagonal ordering
    )
    return single_thread_job("wavefront", [phase])


def evaluate(job):
    rows = []
    rows.append(("Alpha (1 CPU)",
                 ConventionalMachine(ALPHASTATION_500).run(job).seconds))
    rows.append(("Exemplar (16 CPUs)",
                 ConventionalMachine(exemplar(16)).run(job).seconds))
    rows.append(("Tera MTA (1 proc)", MtaMachine(mta(1)).run(job).seconds))
    rows.append(("Tera MTA (2 procs)",
                 MtaMachine(mta(2)).run(job).seconds))
    return rows


def main() -> None:
    for title, job in (("Dense matrix multiply (compute-bound)",
                        matmul_job()),
                       ("Sparse matrix-vector (memory-bound, scattered)",
                        spmv_job()),
                       ("Wavefront stencil (fine-grained only)",
                        wavefront_job())):
        print(title)
        print("-" * len(title))
        rows = evaluate(job)
        best = min(t for _n, t in rows)
        for name, t in rows:
            marker = "  <-- winner" if t == best else ""
            print(f"  {name:<22} {t:>10.1f} s{marker}")
        print()
    print("The pattern matches the paper: conventional SMPs win when")
    print("caches work; the MTA wins when they cannot -- if you can")
    print("feed it hundreds of threads.")
    print()
    print("Note the matmul row-block decomposition (only ~19 strands):")
    print("two MTA processors run no faster than one.  That is exactly")
    print("Section 8's warning -- a loop of 16 independent iterations")
    print("perfectly utilizes a 16-CPU Exemplar but holds 'only a small")
    print("fraction of the parallelism necessary to fully utilize even")
    print("a single-processor Tera MTA'.")


if __name__ == "__main__":
    main()
