"""Rendering of paper-vs-simulated comparison tables."""

from __future__ import annotations

from typing import Sequence

from repro.harness.experiment import Row


def _fmt(v: float | None, unit: str) -> str:
    if v is None:
        return "-"
    if unit == "s":
        return f"{v:,.1f}" if v < 100 else f"{v:,.0f}"
    if unit == "x":
        return f"{v:.2f}"
    if unit == "loops":
        return f"{v:.0f}"
    if unit == "cycles":
        return f"{v:,.0f}"
    if unit == "%":
        return f"{v:+.1f}%"
    return f"{v:g}"


def render_comparison_table(rows: Sequence[Row]) -> str:
    """Aligned text table: label | paper | simulated | error."""
    label_w = max(24, max((len(r.label) for r in rows), default=0) + 1)
    lines = [
        f"{'row':<{label_w}} {'paper':>12} {'simulated':>12} {'err %':>8}",
        "-" * (label_w + 36),
    ]
    for r in rows:
        err = "" if r.error_pct is None else f"{r.error_pct:+.1f}"
        lines.append(
            f"{r.label:<{label_w}} {_fmt(r.paper, r.unit):>12} "
            f"{_fmt(r.simulated, r.unit):>12} {err:>8}")
    return "\n".join(lines)
