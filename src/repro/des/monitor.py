"""Instrumentation for simulations: time series and counters."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator


class TimeSeries:
    """A piecewise-constant quantity sampled at state changes.

    Records ``(time, value)`` points and can compute the time-weighted
    mean -- e.g. average number of busy processors, mean queue depth.
    """

    def __init__(self, sim: "Simulator", initial: float = 0.0):
        self.sim = sim
        self.times: list[float] = [sim.now]
        self.values: list[float] = [float(initial)]

    @property
    def current(self) -> float:
        return self.values[-1]

    def record(self, value: float) -> None:
        self.times.append(self.sim.now)
        self.values.append(float(value))

    def add(self, delta: float) -> None:
        self.record(self.current + delta)

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean of the series from creation to ``until``."""
        end = self.sim.now if until is None else until
        if end <= self.times[0]:
            return self.values[0]
        total = 0.0
        for i in range(len(self.times)):
            t0 = self.times[i]
            t1 = self.times[i + 1] if i + 1 < len(self.times) else end
            t1 = min(t1, end)
            if t1 > t0:
                total += self.values[i] * (t1 - t0)
            if t1 >= end:
                break
        return total / (end - self.times[0])

    def maximum(self) -> float:
        return max(self.values)


class Monitor:
    """A bag of named counters and time series for one simulation."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.counters: dict[str, float] = {}
        self.series: dict[str, TimeSeries] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name: str, initial: float = 0.0) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(self.sim, initial)
        return self.series[name]

    def snapshot(self) -> dict[str, float]:
        """Counters plus the time-average of every gauge."""
        out = dict(self.counters)
        for name, ts in self.series.items():
            out[f"{name}.avg"] = ts.time_average()
            out[f"{name}.max"] = ts.maximum()
        return out
