"""Unit tests for the OpCounter instrumentation helper."""

import pytest

from repro.workload import OpCounter, OpCounts


def test_tick_applies_recipe():
    c = OpCounter()
    recipe = OpCounts(ialu=3, load=1, branch=1)
    c.tick(recipe, times=10)
    assert c.ialu == 30 and c.load == 10 and c.branch == 10
    assert c.to_ops() == OpCounts(ialu=30, load=10, branch=10)


def test_add_named_counts():
    c = OpCounter()
    c.add(falu=5, store=2)
    assert c.falu == 5 and c.store == 2


def test_add_unknown_class_rejected():
    c = OpCounter()
    with pytest.raises(AttributeError):
        c.add(simd=1)


def test_events_tracked_separately():
    c = OpCounter()
    c.event("time_steps", 100)
    c.event("time_steps", 50)
    c.event("pairs")
    assert c.events == {"time_steps": 150, "pairs": 1}
    assert c.to_ops().total == 0  # events are not ops


def test_merge():
    a = OpCounter()
    a.add(ialu=1)
    a.event("x", 2)
    b = OpCounter()
    b.add(ialu=2, load=3)
    b.event("x", 1)
    b.event("y", 5)
    a.merge(b)
    assert a.ialu == 3 and a.load == 3
    assert a.events == {"x": 3, "y": 5}
