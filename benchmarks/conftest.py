"""Shared fixtures for the table/figure benchmarks.

The benchmark kernels (real Threat Analysis / Terrain Masking runs)
execute once per session; each bench then measures the *simulation* of
its table and prints the reproduced table next to the paper's values.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest

from repro.harness import BenchmarkData


@pytest.fixture(scope="session")
def data() -> BenchmarkData:
    return BenchmarkData(threat_scale=0.02, terrain_scale=0.05)
