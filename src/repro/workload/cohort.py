"""Cohort detection: canonical structural signatures of thread programs.

The paper's parallel regions are overwhelmingly *homogeneous*: the 256
chunk threads of Threat Analysis run the same program over different
threat ranges, the sync-variable variant's thousand threads all do
``scan; append-under-lock``, and Terrain Masking's workers all run the
same queue-pop loop.  A set of threads whose programs are structurally
identical -- same item sequence, same lock names, no cross-thread
synchronization other than the region barrier and per-item
:class:`~repro.workload.task.Critical` sections -- is a **cohort** and
can be simulated as one vectorized timeline (see
:mod:`repro.des.batch`) instead of one DES process per thread.

A program's *signature* captures exactly the structure the machine
models dispatch on: the ordered item kinds, the lock name of each
critical section, and whether each phase carries internal parallelism.
Phase magnitudes (op counts, footprints, trip counts) are deliberately
excluded -- cohort threads may be arbitrarily imbalanced, only their
shape must match.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.workload.task import (
    Compute,
    Critical,
    ParallelRegion,
    ThreadProgram,
    WorkQueueRegion,
)

#: Environment escape hatch: set to anything but ""/"0" to force every
#: region and serial step down the pure-DES path.
NO_COHORT_ENV = "REPRO_NO_COHORT"


def cohort_enabled() -> bool:
    """Whether the cohort fast path is enabled (default: yes)."""
    return os.environ.get(NO_COHORT_ENV, "") in ("", "0")


# The sibling escape hatch one layer down: REPRO_FORCE_CLOSED_FORM=0
# keeps the cohort engine but event-steps every thread individually
# (no class compression, convoy-drain replication or closed-form
# regions).  Defined next to the engine; re-exported here so harness
# code can treat both knobs as one surface.
from repro.des.batch import (  # noqa: E402  (re-export)
    FORCE_CLOSED_FORM_ENV,
    closed_form_enabled,
)


ItemSignature = tuple[str, Optional[str], bool]


def item_signature(item: Union[Compute, Critical]) -> ItemSignature:
    """``(kind, lock_name, fine_grained)`` for one thread item."""
    if isinstance(item, Compute):
        return ("compute", None, item.phase.parallelism > 1)
    if isinstance(item, Critical):
        return ("critical", item.lock, item.phase.parallelism > 1)
    raise TypeError(f"unknown thread item {item!r}")


#: id(program) -> (program, signature); identity-keyed because hashing
#: a frozen ThreadProgram walks its whole item tree -- as expensive as
#: recomputing the signature.  The reference keeps the id stable.
_SIG_MEMO: dict[int, tuple[ThreadProgram, tuple]] = {}
_SIG_MEMO_MAX = 65536


def program_signature(program: ThreadProgram) -> tuple[ItemSignature, ...]:
    """The ordered item signatures of one thread's program.

    Memoized by object identity: jobs are memoized by the harness, so
    the same program objects are re-dispatched run after run (every
    machine model and thread count walks the same job).
    """
    hit = _SIG_MEMO.get(id(program))
    if hit is not None and hit[0] is program:
        return hit[1]
    sig = tuple(item_signature(it) for it in program.items)
    if len(_SIG_MEMO) >= _SIG_MEMO_MAX:
        _SIG_MEMO.clear()
    _SIG_MEMO[id(program)] = (program, sig)
    return sig


def region_cohort_signature(
        region: ParallelRegion) -> Optional[tuple[ItemSignature, ...]]:
    """The region's shared program signature, or None if heterogeneous.

    A :class:`ParallelRegion` forms a cohort only when every thread
    runs the same program shape; threads that differ in item order,
    lock names or fine-grained structure must keep their individual
    DES processes.
    """
    threads = region.threads
    sig = program_signature(threads[0])
    for th in threads[1:]:
        if program_signature(th) != sig:
            return None
    return sig


def region_phases(region: Union[ParallelRegion, WorkQueueRegion]):
    """Every phase appearing in the region, in program order."""
    if isinstance(region, ParallelRegion):
        for th in region.threads:
            for it in th.items:
                yield it.phase
    else:
        for item in region.items:
            for it in item.items:
                yield it.phase


def max_region_parallelism(
        region: Union[ParallelRegion, WorkQueueRegion]) -> float:
    """Largest internal phase parallelism inside the region."""
    return max((p.parallelism for p in region_phases(region)), default=1.0)
