"""Post-mortem deadlock diagnosis and the run-level watchdog.

Two watchdog layers live here:

* :func:`diagnose_deadlock` -- called by :meth:`Simulator._deadlock`
  when the event heap drains with live waiters (or the stall watchdog
  trips).  Walks the simulator's process registry to name every
  blocked thread and what it waits on, builds the wait-for graph --
  thread A waits on a resource held by thread B -- from
  :class:`~repro.des.resources.Request` owner back-pointers, and
  reports the first cycle found.
* :class:`RunWatchdog` -- wall-clock escalation for a whole harness
  run (``repro all``): warn at the soft deadline, abort at the hard
  one.  Used by the harness when ``REPRO_RUN_TIMEOUT_S`` is set.

Two canonical deadlock shapes:

* **ABBA**: two threads each hold one lock and want the other's.  The
  resource wait-for edges close a cycle, which the diagnostic prints
  as ``a -> b -> a``.
* **Missing barrier party**: threads blocked on a barrier that will
  never fill.  No cycle exists; the diagnostic still names each
  blocked thread and the barrier (via
  :class:`~repro.des.events.WaitEvent`), which is what a user needs to
  spot the miscounted party.
"""

from __future__ import annotations

import sys
import threading
from typing import TYPE_CHECKING, Callable, Optional

from repro.des.errors import DeadlockDiagnostic
from repro.des.events import AllOf, AnyOf, Event
from repro.des.process import Process
from repro.des.resources import Request
from repro.obs.trace import describe_event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator

#: ``soft[:hard]`` wall-clock seconds for the harness run watchdog
RUN_TIMEOUT_ENV = "REPRO_RUN_TIMEOUT_S"


class RunWatchdog:
    """Staged wall-clock escalation for a long-running harness run.

    Two deadlines: at ``soft_seconds`` the watchdog *warns* (stderr by
    default) that the run is slower than expected; at ``hard_seconds``
    it *aborts* by raising :class:`KeyboardInterrupt` in the main
    thread (``_thread.interrupt_main``), which unwinds the run loop,
    tears the worker pool down through its ``finally`` and leaves the
    persistent cache consistent (entry writes are atomic).

    ``timer_factory`` is injectable so tests drive the escalation with
    fake timers instead of wall clock; it must accept ``(interval,
    function)`` and return an object with ``start``/``cancel``
    (:class:`threading.Timer`'s shape).

    Use as a context manager::

        with RunWatchdog(soft_seconds=60, hard_seconds=300):
            run_experiments(...)
    """

    def __init__(self, soft_seconds: float,
                 hard_seconds: Optional[float] = None, *,
                 on_warn: Optional[Callable[[], None]] = None,
                 on_abort: Optional[Callable[[], None]] = None,
                 timer_factory: Callable = threading.Timer):
        if soft_seconds <= 0:
            raise ValueError("soft_seconds must be positive")
        if hard_seconds is not None and hard_seconds < soft_seconds:
            raise ValueError("hard_seconds must be >= soft_seconds")
        self.soft_seconds = soft_seconds
        self.hard_seconds = hard_seconds
        self._on_warn = on_warn
        self._on_abort = on_abort
        self._timer_factory = timer_factory
        self._timers: list = []
        self.warned = False
        self.aborted = False

    @classmethod
    def from_env(cls, raw: str) -> "RunWatchdog":
        """Parse ``soft[:hard]`` (the ``REPRO_RUN_TIMEOUT_S`` form).

        Malformed values -- extra ``:`` parts, non-numeric fields --
        raise :class:`ValueError` naming the env var instead of being
        silently truncated or surfacing as a bare ``float()`` error: a
        typo in a timeout must not run unguarded (or half-guarded).
        """
        parts = raw.split(":")
        if len(parts) > 2:
            raise ValueError(
                f"{RUN_TIMEOUT_ENV} must be soft[:hard] seconds, "
                f"got {raw!r} ({len(parts)} ':'-separated parts)")
        try:
            soft = float(parts[0])
            hard = float(parts[1]) if len(parts) > 1 else None
        except ValueError:
            raise ValueError(
                f"{RUN_TIMEOUT_ENV} must be soft[:hard] seconds, "
                f"got non-numeric {raw!r}") from None
        return cls(soft_seconds=soft, hard_seconds=hard)

    # ------------------------------------------------------------------
    def _warn(self) -> None:
        self.warned = True
        if self._on_warn is not None:
            self._on_warn()
        else:
            hard = (f"; aborting at {self.hard_seconds:.0f}s"
                    if self.hard_seconds is not None else "")
            print(f"watchdog: run exceeded {self.soft_seconds:.0f}s"
                  f"{hard}", file=sys.stderr)

    def _abort(self) -> None:
        self.aborted = True
        if self._on_abort is not None:
            self._on_abort()
        else:
            import _thread

            print(f"watchdog: run exceeded hard deadline "
                  f"{self.hard_seconds:.0f}s, interrupting",
                  file=sys.stderr)
            _thread.interrupt_main()

    def start(self) -> "RunWatchdog":
        """Arm the deadline timers."""
        if self._timers:
            raise RuntimeError("watchdog already started")
        stages = [(self.soft_seconds, self._warn)]
        if self.hard_seconds is not None:
            stages.append((self.hard_seconds, self._abort))
        for seconds, fn in stages:
            timer = self._timer_factory(seconds, fn)
            if hasattr(timer, "daemon"):
                timer.daemon = True
            self._timers.append(timer)
            timer.start()
        return self

    def cancel(self) -> None:
        """Disarm every pending timer (run finished in time)."""
        for timer in self._timers:
            timer.cancel()
        self._timers = []

    def __enter__(self) -> "RunWatchdog":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.cancel()


def diagnose_deadlock(sim: "Simulator",
                      headline: str) -> DeadlockDiagnostic:
    """Build (not raise) the diagnostic for a stuck simulation."""
    waiters = [p for p in sim.processes
               if not p.triggered and p._waiting_on is not None]
    blocked = tuple((p.name, describe_event(p._waiting_on))
                    for p in waiters)
    cycle = _find_cycle(waiters)

    lines = [headline]
    if blocked:
        lines.append(f"{len(blocked)} thread(s) still blocked:")
        for name, desc in blocked:
            lines.append(f"  - {name}: waiting on {desc}")
    if cycle:
        lines.append("wait-for cycle: " + " -> ".join(cycle + (cycle[0],)))
    return DeadlockDiagnostic("\n".join(lines), blocked=blocked,
                              cycle=cycle)


# ----------------------------------------------------------------------
def _edges(process: Process) -> list[Process]:
    """Live processes that must act before ``process`` can resume."""
    out: list[Process] = []
    _collect(process._waiting_on, out)
    return [p for p in out if not p.triggered]


def _collect(ev: object, out: list[Process]) -> None:
    if isinstance(ev, Request):
        for req in ev.resource._users:
            if req.owner is not None:
                out.append(req.owner)
    elif isinstance(ev, Process):
        out.append(ev)
    elif isinstance(ev, (AllOf, AnyOf)):
        for sub in ev.events:
            if isinstance(sub, Event) and not sub.triggered:
                _collect(sub, out)


def _find_cycle(waiters: list[Process]) -> tuple[str, ...]:
    """First wait-for cycle among the blocked processes (names, in
    order), or an empty tuple.  Iterative colored DFS."""
    graph = {id(p): (p, _edges(p)) for p in waiters}
    color: dict[int, int] = {}          # 1 = on stack, 2 = done
    for start in graph:
        if start in color:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        path: list[int] = []
        while stack:
            node, i = stack.pop()
            if i == 0:
                color[node] = 1
                path.append(node)
            entry = graph.get(node)
            succs = entry[1] if entry is not None else []
            advanced = False
            while i < len(succs):
                nxt = id(succs[i])
                i += 1
                c = color.get(nxt)
                if c == 1:
                    # back edge: the cycle is path from nxt onward
                    k = path.index(nxt)
                    return tuple(graph[n][0].name for n in path[k:])
                if c is None and nxt in graph:
                    stack.append((node, i))
                    stack.append((nxt, 0))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                path.pop()
    return ()
