"""Benchmark data cache and machine-run helpers.

Running an experiment takes three steps: (1) generate the synthetic
scenarios and execute the real benchmark kernels (once, cached here);
(2) turn the instrumented runs into machine-model jobs; (3) simulate
the jobs on the platform models.  ``BenchmarkData`` owns step 1 and
memoizes everything downstream of it.

The kernels run at a reduced scale by default (the workload extractors
extrapolate exactly -- see the ``workload`` modules); pass larger
scales for higher-fidelity structural statistics at more kernel time.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

from repro import taskbench
from repro.c3i import terrain as TE
from repro.c3i import threat as TH
from repro.cmt.spec import cmt as cmt_spec
from repro.harness import store
from repro.obs.trace import active_tracer
from repro.machines import ConventionalMachine, exemplar, ppro
from repro.machines.catalog import ALPHASTATION_500
from repro.machines.spec import MachineSpec
from repro.mta import MtaMachine, mta
from repro.mta.spec import MtaSpec
from repro.workload.task import Job


class BenchmarkData:
    """Scenarios + instrumented kernel runs for both benchmarks."""

    def __init__(self, threat_scale: float = 0.02,
                 terrain_scale: float = 0.05, seed_offset: int = 0):
        self.threat_scale = threat_scale
        self.terrain_scale = terrain_scale
        self.seed_offset = seed_offset
        self._cache: dict[str, object] = {}
        #: id(job) -> (job, fingerprint); the job reference keeps the
        #: id stable, the identity check guards against id reuse.
        self._job_fps: dict[int, tuple[Job, str]] = {}
        #: one entry per _simulate call (including memo/cache hits):
        #: {"kind", "machine", "job", "seconds", "stats"} -- the raw
        #: material of ``repro all --metrics``
        self.metrics_log: list[dict] = []

    def with_seed_offset(self, seed_offset: int) -> "BenchmarkData":
        """A sibling data set over an alternative synthetic-input
        universe (same scales, different generator seeds).

        Centralizing the construction lets the parallel planner
        intercept *every* simulation an experiment performs, including
        the seed-robustness study's alternative universes.  Siblings
        are memoized on the parent so a worker that executes many
        cells of the same universe pays its kernels once.
        """
        if seed_offset == self.seed_offset:
            return self
        return self._memo(f"sibling-{seed_offset}", lambda: type(self)(
            threat_scale=self.threat_scale,
            terrain_scale=self.terrain_scale,
            seed_offset=seed_offset))

    # ------------------------------------------------------------------
    # kernels (step 1)
    # ------------------------------------------------------------------
    def _memo(self, key: str, fn):
        if key not in self._cache:
            self._cache[key] = fn()
        return self._cache[key]

    def _job(self, key: str, fn) -> Job:
        """Memoize a named job recipe and register its fingerprint.

        A recipe-built job is a deterministic function of (recipe
        name, scales, seed offset, model code); everything but the
        name is already folded into every simulation key, so the name
        alone identifies the job content and the structural
        fingerprint walk over the full step tree is skipped.
        """
        job = self._memo(key, fn)
        hit = self._job_fps.get(id(job))
        if hit is None or hit[0] is not job:
            self._job_fps[id(job)] = (job, "recipe:" + key)
        return job

    @property
    def threat_scenarios(self):
        return self._memo("th-sc", lambda: TH.benchmark_scenarios(
            scale=self.threat_scale, seed_offset=self.seed_offset))

    @property
    def threat_sequential(self):
        return self._memo("th-seq", lambda: [
            TH.run_sequential(s) for s in self.threat_scenarios])

    @property
    def terrain_scenarios(self):
        return self._memo("te-sc", lambda: TE.benchmark_scenarios(
            scale=self.terrain_scale, seed_offset=self.seed_offset))

    @property
    def terrain_sequential(self):
        return self._memo("te-seq", lambda: [
            TE.run_sequential(s) for s in self.terrain_scenarios])

    @property
    def terrain_finegrained(self):
        return self._memo("te-fg", lambda: [
            TE.run_finegrained(s) for s in self.terrain_scenarios])

    def terrain_blocked(self, n_threads: int):
        return self._memo(f"te-bl-{n_threads}", lambda: [
            TE.run_blocked(s, n_threads=n_threads)
            for s in self.terrain_scenarios])

    # ------------------------------------------------------------------
    # jobs (step 2)
    # ------------------------------------------------------------------
    def threat_sequential_job(self) -> Job:
        return self._job("th-job-seq", lambda: TH.sequential_benchmark_job(
            self.threat_scenarios, self.threat_sequential))

    def threat_chunked_job(self, n_chunks: int,
                           thread_kind: str = "os") -> Job:
        return self._job(
            f"th-job-ch-{n_chunks}-{thread_kind}",
            lambda: TH.chunked_benchmark_job(
                self.threat_scenarios, self.threat_sequential, n_chunks,
                thread_kind=thread_kind))

    def threat_finegrained_job(self) -> Job:
        return self._job("th-job-fg", lambda: TH.finegrained_benchmark_job(
            self.threat_scenarios, self.threat_sequential))

    def terrain_sequential_job(self) -> Job:
        return self._job("te-job-seq", lambda: TE.sequential_benchmark_job(
            self.terrain_scenarios, self.terrain_sequential))

    def terrain_blocked_job(self, n_threads: int,
                            thread_kind: str = "os") -> Job:
        return self._job(
            f"te-job-bl-{n_threads}-{thread_kind}",
            lambda: TE.blocked_benchmark_job(
                self.terrain_scenarios, self.terrain_blocked(n_threads),
                thread_kind=thread_kind))

    def terrain_finegrained_job(self) -> Job:
        return self._job("te-job-fg", lambda: TE.finegrained_benchmark_job(
            self.terrain_scenarios, self.terrain_finegrained))

    def taskbench_job(self, recipe: str) -> Job:
        """A generated task-graph job; the recipe *is* the parameter
        vector (``tb-<topo>-w<W>-d<D>-g<G>-s<S>-<kind>``), so the key
        round-trips through :meth:`job_from_recipe` like every other
        recipe."""
        return self._job(recipe, lambda: taskbench.job_from_recipe(recipe))

    def job_from_recipe(self, key: str) -> Job:
        """Rebuild a recipe-named job from its key.

        The inverse of the ``_job`` registry: any job whose fingerprint
        is ``recipe:<key>`` can be reconstructed in a different process
        from the key alone, which is what lets the parallel harness
        ship individual simulation cells to pool workers.
        """
        if key == "th-job-seq":
            return self.threat_sequential_job()
        if key == "th-job-fg":
            return self.threat_finegrained_job()
        if key == "te-job-seq":
            return self.terrain_sequential_job()
        if key == "te-job-fg":
            return self.terrain_finegrained_job()
        if key.startswith("th-job-ch-"):
            n, kind = key[len("th-job-ch-"):].rsplit("-", 1)
            return self.threat_chunked_job(int(n), thread_kind=kind)
        if key.startswith("te-job-bl-"):
            n, kind = key[len("te-job-bl-"):].rsplit("-", 1)
            return self.terrain_blocked_job(int(n), thread_kind=kind)
        if key.startswith("tb-"):
            taskbench.parse_recipe(key)  # raises KeyError if malformed
            return self.taskbench_job(key)
        raise KeyError(f"unknown job recipe {key!r}")

    # ------------------------------------------------------------------
    # simulation (step 3)
    # ------------------------------------------------------------------
    # Every simulation goes through _simulate, which layers an
    # in-process memo over the persistent content-addressed cache
    # (repro.harness.store).  The key fingerprints everything that
    # determines the outcome, so ablation specs made with
    # dataclasses.replace get distinct entries even though they share a
    # name with the catalog spec.

    def _job_fingerprint(self, job: Job) -> str:
        hit = self._job_fps.get(id(job))
        if hit is not None and hit[0] is job:
            return hit[1]
        fp = store.fingerprint(job)
        self._job_fps[id(job)] = (job, fp)
        return fp

    def _sim_key(self, key_payload: dict) -> str:
        """The persistent-cache key of one simulation cell."""
        return store.fingerprint(dict(
            key_payload, epoch=store.model_epoch(),
            threat_scale=self.threat_scale,
            terrain_scale=self.terrain_scale,
            seed_offset=self.seed_offset))

    def _simulate(self, key_payload: dict, run) -> float:
        key = self._sim_key(key_payload)
        memo_key = "sim-" + key
        memo = self._cache.get(memo_key)
        if memo is not None:
            self.metrics_log.append(memo)
            return memo["seconds"]
        # Tracing must observe an actual simulation, not a cached
        # number, so an active tracer bypasses the persistent cache
        # (the in-process memo still applies: one trace per distinct
        # run is exactly what a trace viewer wants).
        cache = store.active_cache() if active_tracer() is None else None
        entry = cache.get(key) if cache is not None else None
        if entry is not None:
            record = store.entry_to_record(
                key, entry, self.seed_offset, kind=key_payload["kind"])
        else:
            result = run()
            record = {
                "key": key,
                "kind": key_payload["kind"],
                "machine": result.machine,
                "job": result.job,
                "seconds": result.seconds,
                "seed_offset": self.seed_offset,
                "stats": dict(result.stats),
            }
            if cache is not None:
                payload = dataclasses.asdict(result)
                payload["kind"] = key_payload["kind"]
                cache.put(key, payload)
        self._cache[memo_key] = record
        self.metrics_log.append(record)
        return record["seconds"]

    def run_conventional(self, spec: MachineSpec, job: Job, *,
                         slices_per_phase: int = 16,
                         exploit_fine_grained: bool = False) -> float:
        return self._simulate(
            {"kind": "conventional", "spec": spec,
             "slices_per_phase": slices_per_phase,
             "exploit_fine_grained": exploit_fine_grained,
             "job": self._job_fingerprint(job)},
            lambda: ConventionalMachine(
                spec, slices_per_phase=slices_per_phase,
                exploit_fine_grained=exploit_fine_grained).run(job))

    def run_mta_spec(self, spec: MtaSpec, job: Job, *,
                     slices_per_phase: int = 8) -> float:
        return self._simulate(
            {"kind": "mta", "spec": spec,
             "slices_per_phase": slices_per_phase,
             "job": self._job_fingerprint(job)},
            lambda: MtaMachine(
                spec, slices_per_phase=slices_per_phase).run(job))

    def run_mta(self, n_processors: int, job: Job) -> float:
        return self.run_mta_spec(mta(n_processors), job)

    # convenience shorthands used by the registry -----------------------
    def alpha(self, job: Job) -> float:
        return self.run_conventional(ALPHASTATION_500, job)

    def ppro(self, n: int, job: Job) -> float:
        return self.run_conventional(ppro(n), job)

    def exemplar(self, n: int, job: Job) -> float:
        return self.run_conventional(exemplar(n), job)

    def cmt(self, n: int, job: Job) -> float:
        return self.run_conventional(cmt_spec(n), job)


@lru_cache(maxsize=4)
def default_data(threat_scale: float = 0.02,
                 terrain_scale: float = 0.05) -> BenchmarkData:
    """The process-wide shared benchmark data (kernels run once)."""
    return BenchmarkData(threat_scale=threat_scale,
                         terrain_scale=terrain_scale)
