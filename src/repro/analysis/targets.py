"""Which simulated-thread jobs each registry experiment runs.

``repro race`` analyzes experiments by the jobs they would feed the
machine models -- mirroring the builders each registry entry calls on
:class:`~repro.harness.runner.BenchmarkData` (see
:mod:`repro.harness.registry` / :mod:`repro.harness.ablations`), but
without paying for any simulation.  Experiments that run no simulated
jobs (the compiler study, the cycle-level micro-claims, the analytic
temp-memory ablation) map to an empty dict and report clean.

``seed-robustness`` re-runs the same job *builders* under different
seeds; the job structure (threads, locks, access ranges) is seed
independent, so analyzing the default-seed jobs covers it.
"""

from __future__ import annotations

from typing import Callable

from repro.harness.runner import BenchmarkData
from repro.workload.task import Job

_JobSpec = Callable[[BenchmarkData], Job]


def _th_seq(d: BenchmarkData) -> Job:
    return d.threat_sequential_job()


def _te_seq(d: BenchmarkData) -> Job:
    return d.terrain_sequential_job()


def _th_fg(d: BenchmarkData) -> Job:
    return d.threat_finegrained_job()


def _te_fg(d: BenchmarkData) -> Job:
    return d.terrain_finegrained_job()


def _chunked(n: int, kind: str = "os") -> _JobSpec:
    return lambda d: d.threat_chunked_job(n, thread_kind=kind)


def _blocked(n: int) -> _JobSpec:
    return lambda d: d.terrain_blocked_job(n)


def _taskbench(recipe: str) -> _JobSpec:
    return lambda d: d.taskbench_job(recipe)


def _taskbench_specs() -> tuple[_JobSpec, ...]:
    from repro.harness.registry import (
        TASKBENCH_COARSE,
        TASKBENCH_FINE,
        TASKBENCH_TOPOLOGY_RECIPES,
    )
    recipes = (TASKBENCH_FINE, TASKBENCH_COARSE) + TASKBENCH_TOPOLOGY_RECIPES
    return tuple(_taskbench(r) for r in recipes)


#: experiment id -> job builders, matching the registry entries
EXPERIMENT_JOBS: dict[str, tuple[_JobSpec, ...]] = {
    "table2": (_th_seq,),
    "table3": (_th_seq,) + tuple(_chunked(n) for n in range(1, 5)),
    "table4": (_th_seq,) + tuple(_chunked(n) for n in range(1, 17)),
    "table5": (_th_seq, _chunked(256, "hw")),
    "table6": tuple(_chunked(n, "hw") for n in (8, 16, 32, 64, 128, 256)),
    "table7": (_th_seq, _chunked(4), _chunked(8), _chunked(16),
               _chunked(256, "hw")),
    "table8": (_te_seq,),
    "table9": (_te_seq,) + tuple(_blocked(n) for n in range(1, 5)),
    "table10": (_te_seq,) + tuple(_blocked(n) for n in range(1, 17)),
    "table11": (_te_seq, _te_fg),
    "table12": (_te_seq, _te_fg, _blocked(4), _blocked(8), _blocked(16)),
    "autopar": (),   # compiler study: no simulated jobs
    "micro": (),     # cycle-level kernels: no workload jobs
    "scaling": (_chunked(1024, "hw"), _te_fg),
    "threat-alternative": (_th_fg, _chunked(16), _chunked(256, "hw")),
    "ablation-finegrained-smp": (_te_fg, _blocked(16)),
    "ablation-network": (_chunked(256, "hw"), _te_fg),
    "ablation-issue": (_th_seq,),
    "ablation-cache": (_chunked(1), _chunked(16)),
    "ablation-temp-memory": (),  # analytic model: no simulated jobs
    "seed-robustness": (_chunked(256, "hw"), _te_fg, _blocked(1),
                        _blocked(16)),
    "sensitivity": (_th_seq, _te_seq, _chunked(256, "hw"), _te_fg),
    "taskbench": _taskbench_specs(),
}


def experiment_jobs(experiment_id: str,
                    data: BenchmarkData) -> dict[str, Job]:
    """The experiment's jobs keyed by job name (builders that produce
    the same job -- e.g. 16 chunks for both Table 4 and Table 7 --
    collapse to one entry)."""
    from repro.harness.registry import _ALIASES
    key = _ALIASES.get(experiment_id, experiment_id)
    if key not in EXPERIMENT_JOBS:
        raise KeyError(f"unknown experiment {experiment_id!r}")
    jobs: dict[str, Job] = {}
    for spec in EXPERIMENT_JOBS[key]:
        job = spec(data)
        jobs[job.name] = job
    return jobs
