"""Table 12: Terrain Masking cross-platform summary, including the
'two Tera processors ~ eight Exemplar processors' equivalence."""

from _support import run_and_report


def bench_table12(benchmark, data):
    run_and_report(benchmark, data, "table12")
