"""Tests for the MTA spec and its derived quantities."""

import pytest

from repro.mta import MTA_2, MtaSpec, mta


def test_prototype_matches_paper_table1():
    assert MTA_2.n_processors == 2
    assert MTA_2.clock_hz == 255e6
    assert MTA_2.streams_per_processor == 128
    assert MTA_2.issue_interval_cycles == 21.0


def test_validation():
    with pytest.raises(ValueError):
        MtaSpec(n_processors=0)
    with pytest.raises(ValueError):
        MtaSpec(n_processors=257)
    with pytest.raises(ValueError):
        MtaSpec(streams_per_processor=0)
    with pytest.raises(ValueError):
        MtaSpec(issue_interval_cycles=0)
    with pytest.raises(ValueError):
        MtaSpec(lookahead=-1)
    with pytest.raises(ValueError):
        MtaSpec(ops_per_instruction=0)
    with pytest.raises(ValueError):
        MtaSpec(network_words_per_cycle=0)


def test_visible_stall():
    spec = MtaSpec(lookahead=5, mem_latency_cycles=140.0)
    assert spec.visible_stall_cycles == 140 - 5 * 21
    # enough lookahead hides everything
    spec2 = MtaSpec(lookahead=8, mem_latency_cycles=140.0)
    assert spec2.visible_stall_cycles == 0.0


def test_stream_interval_grows_with_memory_fraction():
    spec = MTA_2
    base = spec.stream_interval_cycles(0.0)
    assert base == spec.issue_interval_cycles
    heavy = spec.stream_interval_cycles(0.5)
    assert heavy > base
    with pytest.raises(ValueError):
        spec.stream_interval_cycles(1.5)


def test_single_thread_issue_rate_is_5_percent():
    """Paper: one thread issues one instruction every 21 cycles,
    roughly 5% utilization."""
    rate = MTA_2.stream_issue_rate(0.0)
    assert rate / MTA_2.clock_hz == pytest.approx(1 / 21)
    assert 0.04 < rate / MTA_2.clock_hz < 0.06


def test_network_capacity_scales_sublinearly():
    one = MTA_2.network_capacity_words_per_s(1)
    two = MTA_2.network_capacity_words_per_s(2)
    four = MTA_2.network_capacity_words_per_s(4)
    assert one < two < 2 * one          # sublinear
    assert two / one == pytest.approx(2 ** MTA_2.network_scaling_exponent)
    assert four < 4 * one
    with pytest.raises(ValueError):
        MTA_2.network_capacity_words_per_s(0)


def test_with_processors():
    one = mta(1)
    assert one.n_processors == 1
    assert one.clock_hz == MTA_2.clock_hz
    assert MTA_2.n_processors == 2  # original untouched


def test_thread_costs_match_paper():
    """Section 2: hw create 2 cycles, sw create 50-100, sync 1 cycle."""
    hw = MTA_2.costs_for("hw")
    sw = MTA_2.costs_for("sw")
    assert hw.create_cycles == 2.0
    assert 50 <= sw.create_cycles <= 100
    assert hw.sync_cycles == 1.0
    assert sw.sync_cycles == 1.0
    with pytest.raises(KeyError):
        MTA_2.costs_for("fiber")
