"""Live sync-hazard monitoring of a DES simulation.

The static job walk in :mod:`repro.analysis.hb` cannot see hazards
that only exist in the *dynamics* of the sync primitives: a producer
that clobbers a full/empty cell before the consumer drained it, a
consumer parked forever on a cell nobody fills, a barrier whose party
count was sized for more threads than ever arrive.  For those, the
primitives themselves carry a guarded hook -- ``sim.monitor`` -- that
is ``None`` in normal runs (a single predictable branch, the same
zero-cost pattern as ``sim.trace``) and a :class:`SyncMonitor` under
``repro race --fixtures`` or in tests.

Usage::

    with monitoring(sim) as mon:
        ... build cells/barriers, run the simulation ...
    findings = mon.finish(job="fixture-skipped-writeef")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.analysis.report import Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.simulator import Simulator
    from repro.des.sync import FullEmptyCell, SimBarrier


class SyncMonitor:
    """Collects dynamic sync hazards from a simulation run.

    The primitives self-register at construction (so the monitor sees
    every cell and barrier without the workload threading references
    through), and report overwrite events as they happen;
    :meth:`finish` inspects the end-of-run state for everything that
    never resolved.
    """

    def __init__(self) -> None:
        self.cells: list["FullEmptyCell"] = []
        self.barriers: list["SimBarrier"] = []
        self._overwrites: list[tuple[str, float]] = []

    # -- hooks called from des.sync (guarded by ``sim.monitor``) --

    def register_cell(self, cell: "FullEmptyCell") -> None:
        self.cells.append(cell)

    def register_barrier(self, barrier: "SimBarrier") -> None:
        self.barriers.append(barrier)

    def overwrite_full(self, cell: "FullEmptyCell") -> None:
        self._overwrites.append((cell.name, cell.sim.now))

    # -- verdict --

    @property
    def overwrite_count(self) -> int:
        return len(self._overwrites)

    def finish(self, job: str = "", region: str = "run") -> list[Finding]:
        """The run's dynamic findings: overwrites seen live plus every
        sync object left in a stuck state."""
        findings: list[Finding] = []
        for name, when in self._overwrites:
            findings.append(Finding(
                hazard="write-to-full", job=job, region=region,
                location=name, units=(name,),
                detail=f"full cell clobbered at t={when:g}; the "
                       f"unconsumed value was lost (writeef would "
                       f"have blocked)"))
        for cell in self.cells:
            if cell._readers:
                findings.append(Finding(
                    hazard="read-from-empty", job=job, region=region,
                    location=cell.name, units=(cell.name,),
                    detail=f"{len(cell._readers)} reader(s) still "
                           f"blocked on an empty cell at end of run"))
            if cell._writers:
                findings.append(Finding(
                    hazard="write-to-full", job=job, region=region,
                    location=cell.name, units=(cell.name,),
                    detail=f"{len(cell._writers)} writer(s) still "
                           f"blocked on a full cell at end of run"))
        for barrier in self.barriers:
            if barrier._waiting:
                findings.append(Finding(
                    hazard="barrier-mismatch", job=job, region=region,
                    location=barrier.name, units=(barrier.name,),
                    detail=f"{barrier.n_waiting} of {barrier.parties} "
                           f"parties waiting after "
                           f"{barrier.generations} completed "
                           f"generation(s)"))
        findings.sort(key=lambda f: f.key)
        return findings


@contextmanager
def monitoring(sim: "Simulator") -> Iterator[SyncMonitor]:
    """Attach a fresh :class:`SyncMonitor` to ``sim`` for the block."""
    mon = SyncMonitor()
    prev = sim.monitor
    sim.monitor = mon
    try:
        yield mon
    finally:
        sim.monitor = prev
