"""A small loop-nest IR: the programs the compiler model analyzes.

Expressions::

    Const(3)                          literal
    VarRef("i")                       scalar read
    ArrayRef("a", (expr, ...))        array element read
    BinOp("+", e1, e2)                arithmetic
    Call("f", (args...), pure=False)  function call in expression position

Statements::

    Assign(target, value)             target is VarRef or ArrayRef
    CallStmt("f", (args...))          call with (assumed) side effects
    IfStmt(cond, then, orelse)
    ForLoop(var, lo, hi, body, pragma_parallel=False)
    WhileLoop(cond, body)

A :class:`Program` is a named parameter list plus a statement body.
Index expressions of the form ``a*i + b`` (``i`` the loop variable)
are recognised as affine by the dependence tests; anything else --
reads of mutated scalars, calls, nested array refs -- is opaque and
treated conservatively, exactly the behaviour the paper blames for the
compilers' failure on general-purpose C code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Const:
    value: float

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/", "%", "<", "<=", ">", ">=",
                           "==", "!=", "&&", "||"):
            raise ValueError(f"unknown operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Call:
    """A function call in expression position.

    ``pure=True`` asserts no side effects and a value depending only on
    the arguments; the compiler model only believes annotations (it has
    no interprocedural analysis -- the paper's "separately compiled
    modules" obstacle)."""

    fn: str
    args: tuple["Expr", ...] = ()
    pure: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.fn}({inner})"


@dataclass(frozen=True)
class ArrayRef:
    array: str
    indices: tuple["Expr", ...]

    def __post_init__(self) -> None:
        if not self.indices:
            raise ValueError("array reference needs at least one index")

    def __str__(self) -> str:
        return self.array + "".join(f"[{i}]" for i in self.indices)


Expr = Union[Const, VarRef, BinOp, Call, ArrayRef]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Assign:
    target: Union[VarRef, ArrayRef]
    value: Expr

    def __post_init__(self) -> None:
        if not isinstance(self.target, (VarRef, ArrayRef)):
            raise TypeError("assignment target must be a scalar or array ref")

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass(frozen=True)
class CallStmt:
    fn: str
    args: tuple[Expr, ...] = ()
    #: which arguments (by index) the callee may write through
    writes_args: tuple[int, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.fn}({inner});"


@dataclass(frozen=True)
class IfStmt:
    cond: Expr
    then: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()

    def __str__(self) -> str:
        return f"if ({self.cond}) {{ ... }}"


@dataclass(frozen=True)
class ForLoop:
    var: str
    lower: Expr
    upper: Expr
    body: tuple["Stmt", ...]
    #: the programmer's `#pragma multithreaded` / `#pragma parallel`
    pragma_parallel: bool = False
    label: str = ""

    def __str__(self) -> str:
        pragma = "#pragma multithreaded\n" if self.pragma_parallel else ""
        return (f"{pragma}for ({self.var} = {self.lower} .. {self.upper})"
                f" {{ ... }}")


@dataclass(frozen=True)
class WhileLoop:
    cond: Expr
    body: tuple["Stmt", ...]
    label: str = ""

    def __str__(self) -> str:
        return f"while ({self.cond}) {{ ... }}"


Stmt = Union[Assign, CallStmt, IfStmt, ForLoop, WhileLoop]


@dataclass(frozen=True)
class Program:
    """A named loop-nest program (one benchmark routine)."""

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    source_note: str = ""

    def loops(self) -> list[Union[ForLoop, WhileLoop]]:
        """Every loop in the program, outermost first."""
        found: list[Union[ForLoop, WhileLoop]] = []

        def walk(stmts: tuple[Stmt, ...]) -> None:
            for s in stmts:
                if isinstance(s, (ForLoop, WhileLoop)):
                    found.append(s)
                    walk(s.body)
                elif isinstance(s, IfStmt):
                    walk(s.then)
                    walk(s.orelse)

        walk(self.body)
        return found
