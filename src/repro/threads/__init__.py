"""Programming systems layered on the machine models.

Three surfaces, mirroring how each platform was programmed in the paper:

* :mod:`~repro.threads.sthreads` -- the Caltech Sthreads library
  (coarse threads + locks over Win32, used on the Pentium Pro): an
  explicit create/join/lock API whose operations carry OS-thread costs.
* :mod:`~repro.threads.pragmas` -- Exemplar / Tera parallel-loop
  pragmas: helpers that turn a loop described as phases into the
  :class:`~repro.workload.Job` parallel regions the machine models run.
* :mod:`~repro.threads.costs` -- the Section 7 cost comparison (thread
  creation and synchronization, platform by platform), as data.

Tera futures and sync variables live in :mod:`repro.mta.runtime`.
"""

from repro.threads.sthreads import SthreadsRuntime, Sthread, SthreadLock
from repro.threads.pragmas import (
    chunked_loop_job,
    parallel_region,
    work_queue_job,
)
from repro.threads.costs import COST_TABLE, PlatformCosts, cost_ratio

__all__ = [
    "COST_TABLE",
    "PlatformCosts",
    "Sthread",
    "SthreadLock",
    "SthreadsRuntime",
    "chunked_loop_job",
    "cost_ratio",
    "parallel_region",
    "work_queue_job",
]
