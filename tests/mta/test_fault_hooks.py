"""Micro-level fault-injection hooks: stream revocation, bank
hot-spotting, full/empty stalls (the machine-level half of the chaos
subsystem, exercised at cycle fidelity)."""

import pytest

from repro.mta import (
    Instruction,
    InterleavedMemory,
    MtaSpec,
    MtaSystem,
    alu_kernel,
    independent_load_kernel,
)


def small_spec(n_processors=1, lookahead=5, latency=140.0, streams=128):
    return MtaSpec(n_processors=n_processors, lookahead=lookahead,
                   mem_latency_cycles=latency,
                   streams_per_processor=streams)


# ----------------------------------------------------------------------
# Stream revocation
# ----------------------------------------------------------------------

def run_revoked(n_streams=8, n_ins=40, revoke_at=200.0, revoke_n=4):
    sys = MtaSystem(small_spec())
    for _ in range(n_streams):
        sys.add_stream(alu_kernel(n_ins))
    sys.schedule_revocation(revoke_at, 0, revoke_n)
    return sys, sys.run()


def test_revocation_conserves_work():
    """Every instruction still issues exactly once: revoked streams'
    residual programs migrate onto fresh streams."""
    n_streams, n_ins = 8, 40
    sys, stats = run_revoked(n_streams, n_ins)
    assert stats.completed
    assert stats.total_issued == n_streams * n_ins
    assert stats.stats["revoked_streams"] == 4.0
    assert stats.stats["migrated_instructions"] > 0


def test_revocation_slows_completion():
    base = MtaSystem(small_spec())
    for _ in range(8):
        base.add_stream(alu_kernel(40))
    healthy = base.run()
    _, faulted = run_revoked(8, 40, revoke_at=100.0, revoke_n=7)
    assert faulted.completed
    # fewer live streams after the fault => longer to drain the work
    assert faulted.cycles > healthy.cycles


def test_revocation_is_deterministic():
    a = run_revoked()[1]
    b = run_revoked()[1]
    assert a.cycles == b.cycles
    assert a.total_issued == b.total_issued
    assert a.stats == b.stats


def test_revocation_keeps_one_stream():
    """Revoking more streams than exist leaves the oldest running."""
    sys = MtaSystem(small_spec())
    for _ in range(4):
        sys.add_stream(alu_kernel(10))
    sys.schedule_revocation(50.0, 0, 99)
    stats = sys.run()
    assert stats.completed
    assert stats.total_issued == 40
    assert stats.stats["revoked_streams"] == 3.0


def test_revocation_with_memory_in_flight():
    """Streams blocked on outstanding loads migrate only after the
    references drain; results are still all delivered."""
    sys = MtaSystem(small_spec(latency=400.0))
    for s in range(6):
        sys.add_stream(independent_load_kernel(20, base=s * 4096))
    sys.schedule_revocation(30.0, 0, 5)
    stats = sys.run()
    assert stats.completed
    assert stats.total_issued == 6 * 20
    assert stats.memory_requests == 6 * 20


def test_revocation_validation():
    sys = MtaSystem(small_spec())
    with pytest.raises(ValueError):
        sys.schedule_revocation(-1.0, 0, 1)
    with pytest.raises(ValueError):
        sys.schedule_revocation(0.0, 5, 1)
    with pytest.raises(ValueError):
        sys.schedule_revocation(0.0, 0, 0)


def test_stream_double_revoke_rejected():
    from repro.mta.stream import Stream
    s = Stream(sid=0, program=alu_kernel(4))
    s.revoke(10.0)
    with pytest.raises(ValueError):
        s.revoke(11.0)


def test_residual_program_rebases_dependences():
    from repro.mta.stream import Stream
    prog = [Instruction("load", addr=0),
            Instruction("alu", depends_on=0),
            Instruction("load", addr=8),
            Instruction("alu", depends_on=2)]
    s = Stream(sid=0, program=prog)
    s.note_issue(0.0)
    s.note_completion(0, 140.0)
    s.note_issue(21.0)
    s.revoke(30.0)
    residual = s.residual_program()
    assert len(residual) == 2
    # the load's dependence slot rebased: old index 2 -> new index 0
    assert residual[0].depends_on is None
    assert residual[1].depends_on == 0


# ----------------------------------------------------------------------
# Bank hot-spotting
# ----------------------------------------------------------------------

def test_hotspot_inflates_bank_occupancy():
    mem = InterleavedMemory(n_banks=4, latency_cycles=10.0)
    mem.inject_hotspot(0, 5.0)
    # two back-to-back requests to bank 0: the second queues 5 cycles
    done0 = mem.issue(_req(0), 0.0)
    done1 = mem.issue(_req(0), 0.0)
    assert done1 - done0 == pytest.approx(5.0)
    assert mem.hotspot_extra_cycles == pytest.approx(8.0)
    mem.clear_hotspots()
    d2 = mem.issue(_req(1), 100.0)
    d3 = mem.issue(_req(1), 100.0)
    assert d3 - d2 == pytest.approx(1.0)


def test_hotspot_slows_system_run():
    def run(hot):
        sys = MtaSystem(small_spec(),
                        memory=InterleavedMemory(n_banks=4,
                                                 latency_cycles=140.0))
        if hot:
            sys.memory.inject_hotspot(0, 16.0)
        for s in range(8):
            sys.add_stream(independent_load_kernel(30, stride=1,
                                                   base=0))
        return sys.run()

    healthy, faulted = run(False), run(True)
    assert faulted.completed and healthy.completed
    assert faulted.cycles > healthy.cycles
    assert faulted.stats["hotspot_extra_cycles"] > 0.0
    assert healthy.stats["hotspot_extra_cycles"] == 0.0


def test_hotspot_validation():
    mem = InterleavedMemory(n_banks=4)
    with pytest.raises(ValueError):
        mem.inject_hotspot(4, 2.0)
    with pytest.raises(ValueError):
        mem.inject_hotspot(0, 0.5)


# ----------------------------------------------------------------------
# Forced-empty full/empty stalls
# ----------------------------------------------------------------------

def test_force_empty_stalls_sync_loads():
    mem = InterleavedMemory(n_banks=4, latency_cycles=10.0)
    mem.poke(8, 42)          # full
    assert mem.force_empty([8, 16]) == 1   # 16 was already empty
    sys_spec = small_spec(latency=10.0)
    sys = MtaSystem(sys_spec, memory=mem)
    sys.add_stream([Instruction("sync_load", addr=8)])
    stats = sys.run(max_cycles=500.0)
    # no producer ever refills the word: the load retries until cutoff
    assert not stats.completed
    assert stats.memory_retries > 0


def test_force_empty_recovers_when_refilled():
    mem = InterleavedMemory(n_banks=4, latency_cycles=10.0)
    mem.poke(8, 42)
    mem.force_empty([8])
    sys = MtaSystem(small_spec(latency=10.0), memory=mem)
    sys.add_stream([Instruction("sync_load", addr=8)])
    sys.add_stream([Instruction("alu"),
                    Instruction("sync_store", addr=8, value=7)],
                   processor=0)
    stats = sys.run()
    assert stats.completed
    (consumer, _), _ = sys._streams[0], None
    assert consumer.results[0] == 7


def _req(addr):
    from repro.mta.memory import MemRequest
    return MemRequest(kind="load", addr=addr)
