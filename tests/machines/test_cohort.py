"""Cohort fast path vs pure DES on the conventional machine model.

The acceptance bar from the vectorized-cohort work: for any job the
registry can produce, simulated seconds on the cohort path agree with
the pure-DES path to within 1e-9 relative, and regions the cohort
compiler cannot replay exactly are routed back to DES.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machines import ConventionalMachine, exemplar
from repro.workload import (
    JobBuilder,
    OpCounts,
    ThreadProgramBuilder,
    make_phase,
)
from repro.workload.cohort import NO_COHORT_ENV, cohort_enabled

from tests.parity import REL_TOL, assert_equivalent, rel_err
from tests.parity import run_both_conventional as run_both


# ----------------------------------------------------------------------
# randomized homogeneous regions
# ----------------------------------------------------------------------

@st.composite
def homogeneous_jobs(draw):
    """A job with one homogeneous region: same shape, random magnitudes.

    Cohort threads may be arbitrarily imbalanced -- only their item
    *shape* must match -- so per-thread op counts are drawn freely.
    """
    n_threads = draw(st.integers(min_value=1, max_value=10))
    n_items = draw(st.integers(min_value=1, max_value=3))
    with_lock = draw(st.booleans())
    shared_bytes = draw(st.sampled_from([0.0, 2e5]))
    threads = []
    for i in range(n_threads):
        b = ThreadProgramBuilder(f"t{i}")
        for k in range(n_items):
            ops = OpCounts(
                ialu=draw(st.floats(min_value=1e3, max_value=2e6)),
                load=draw(st.floats(min_value=0.0, max_value=5e5)),
            )
            b.compute(f"c{k}", ops, unique_bytes=shared_bytes)
            if with_lock:
                b.critical("lock-0", f"crit{k}",
                           OpCounts(store=draw(st.floats(min_value=10,
                                                         max_value=1e4)),
                                    sync=2.0))
        threads.append(b.build())
    job = (JobBuilder("prop")
           .serial("setup", OpCounts(ialu=1e4))
           .parallel(threads)
           .build())
    return job


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(homogeneous_jobs(), st.integers(min_value=1, max_value=8))
def test_property_cohort_matches_des(job, n_cpus):
    des, coh = run_both(job, n_cpus=n_cpus)
    assert_equivalent(des, coh)
    assert coh.stats["cohort_regions"] == 1.0
    assert coh.stats["des_regions"] == 0.0
    assert des.stats["cohort_regions"] == 0.0
    assert des.stats["des_regions"] == 1.0


@pytest.mark.slow
@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=12),
       st.floats(min_value=1e4, max_value=5e6))
def test_property_work_queue_matches_des(n_threads, n_items, ops):
    items = []
    for i in range(n_items):
        items.append(
            ThreadProgramBuilder(f"item{i}")
            .compute("c", OpCounts(ialu=ops * (1 + 0.1 * i), load=ops / 4),
                     unique_bytes=1e5)
            .critical("tally", "crit", OpCounts(store=64.0, sync=2.0))
            .build_work_item())
    job = JobBuilder("wq").work_queue(items, n_threads).build()
    des, coh = run_both(job)
    assert_equivalent(des, coh)
    assert coh.stats["cohort_regions"] == 1.0


# ----------------------------------------------------------------------
# routing: what must stay on the DES path
# ----------------------------------------------------------------------

def test_heterogeneous_region_routes_to_des():
    a = (ThreadProgramBuilder("a")
         .compute("c", OpCounts(ialu=1e5)).build())
    b = (ThreadProgramBuilder("b")
         .compute("c", OpCounts(ialu=1e5))
         .critical("L", "crit", OpCounts(store=10.0)).build())
    job = JobBuilder("het").parallel([a, b]).build()
    des, coh = run_both(job)
    # identical timing either way: the cohort machine fell back to DES
    assert coh.seconds == des.seconds
    assert coh.stats["cohort_regions"] == 0.0
    assert coh.stats["des_regions"] == 1.0


def test_fine_grained_region_routes_to_des():
    phase = make_phase("fg", OpCounts(falu=2e6), parallelism=8.0)
    th = [ThreadProgramBuilder(f"t{i}").phase(phase).build()
          for i in range(4)]
    job = JobBuilder("fg").parallel(th).build()
    des, coh = run_both(job, fine_grained=True)
    assert coh.seconds == des.seconds
    assert coh.stats["des_regions"] == 1.0
    assert coh.stats["cohort_regions"] == 0.0


def test_serial_steps_use_closed_form():
    job = (JobBuilder("serial")
           .serial("a", OpCounts(ialu=1e6, load=2e5), unique_bytes=3e5)
           .serial("b", OpCounts(falu=5e5))
           .build())
    des, coh = run_both(job)
    assert rel_err(coh.seconds, des.seconds) <= REL_TOL
    assert coh.stats["cohort_serial_steps"] == 2.0
    assert des.stats["des_serial_steps"] == 2.0


# ----------------------------------------------------------------------
# the escape hatch
# ----------------------------------------------------------------------

def test_no_cohort_env_disables_fast_path(monkeypatch):
    monkeypatch.setenv(NO_COHORT_ENV, "1")
    assert not cohort_enabled()
    m = ConventionalMachine(exemplar(2))
    assert m.use_cohort is False
    monkeypatch.setenv(NO_COHORT_ENV, "0")
    assert cohort_enabled()
    assert ConventionalMachine(exemplar(2)).use_cohort is True


def test_explicit_flag_overrides_env(monkeypatch):
    monkeypatch.setenv(NO_COHORT_ENV, "1")
    m = ConventionalMachine(exemplar(2), use_cohort=True)
    assert m.use_cohort is True
