"""Parameterized task-graph workload generator (Task Bench style).

A single seeded generator spans the workload space that dozens of
hand-written benchmarks cannot (PAPERS.md: "Task Bench", arXiv
1908.05790): a dependence *topology* x graph *width* x *depth* x
per-task *grain*, expanded into an explicit level-synchronous task
graph and compiled onto the existing workload IR
(:mod:`repro.workload`).  Because the output is an ordinary
:class:`~repro.workload.task.Job` -- serial steps plus one
:class:`~repro.workload.task.ParallelRegion` per graph level -- every
generated graph runs on both the DES and cohort engines via the
existing segment-program path, is race-analyzable, fault-injectable
and cacheable with **no engine changes**.

Topologies (levels ``0..depth-1``, edges only from level ``L-1`` to
``L``, so every graph is acyclic by construction):

* ``stencil`` -- constant width; task ``(L, i)`` depends on its
  three-point neighbourhood ``(L-1, i-1..i+1)``, clipped at the edges.
* ``fanout`` -- repeated fork/join: even levels hold one task, odd
  levels ``width`` tasks; forks read the single parent, joins read
  every task of the previous level.
* ``tree`` -- binary tree unrolled level by level: level ``L`` holds
  ``min(width, 2**L)`` tasks and task ``(L, i)`` depends on
  ``(L-1, i // 2)`` while the tree is still widening, or on its own
  column once the width cap is reached.
* ``mesh`` -- nearest-neighbour wrap-around mesh: constant width,
  task ``(L, i)`` depends on ``(L-1, i)`` and ``(L-1, (i+1) % width)``.

Determinism: per-task grain jitter comes from SHA-256 over the
``(seed, level, index)`` coordinates -- no ``random.Random``, so the
same parameters produce bit-identical graphs on every Python version
and platform (the golden-fingerprint tests pin this).  The seed
changes task *magnitudes* only, never the graph structure.

Recipe grammar (the registry/service cell vocabulary)::

    tb-<topology>-w<width>-d<depth>-g<grain>-s<seed>-<kind>

e.g. ``tb-stencil-w8-d4-g2-s0-hw``: kind is the thread-kind cost row
("hw" for MTA streams / CMT strands, "os"/"sw" for the SMPs).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.workload.builder import make_phase
from repro.workload.ops import OpCounts, read_of, write_of
from repro.workload.phase import Phase
from repro.workload.task import (
    Compute,
    Job,
    ParallelRegion,
    SerialStep,
    ThreadProgram,
)

#: The four dependence topologies.
TOPOLOGIES = ("stencil", "fanout", "tree", "mesh")

#: Thread kinds a recipe may name (cost-table rows of the machine specs).
THREAD_KINDS = ("os", "sw", "hw")

#: Parameter bounds -- generous enough for thousand-cell sweeps, tight
#: enough that a malformed service request cannot ask for a billion-task
#: graph.
MAX_WIDTH = 4096
MAX_DEPTH = 256
MAX_GRAIN = 65536
MAX_SEED = 2**32 - 1

#: Work of one grain unit (one task at ``grain=1`` averages one unit).
#: ~2700 scalar ops with a realistic mix: enough that a task is not
#: pure thread-creation overhead, small enough that wide x deep graphs
#: stay cheap to simulate.
BASE_OPS = OpCounts(ialu=1200.0, falu=400.0, load=600.0, store=300.0,
                    branch=200.0)

#: Footprint of one grain unit (bytes): word-sized traffic over a small
#: private working set, so cache behaviour varies with grain.
BASE_UNIQUE_BYTES = 2048.0

#: Jitter band: per-task scale factors are uniform in [0.75, 1.25).
JITTER_SPAN = 0.5
JITTER_BASE = 0.75


@dataclass(frozen=True)
class TaskGraphParams:
    """The factorial coordinates of one generated graph."""

    topology: str
    width: int
    depth: int
    grain: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"expected one of {TOPOLOGIES}")
        if not 1 <= self.width <= MAX_WIDTH:
            raise ValueError(f"width must be in 1..{MAX_WIDTH}")
        if not 1 <= self.depth <= MAX_DEPTH:
            raise ValueError(f"depth must be in 1..{MAX_DEPTH}")
        if not 1 <= self.grain <= MAX_GRAIN:
            raise ValueError(f"grain must be in 1..{MAX_GRAIN}")
        if not 0 <= self.seed <= MAX_SEED:
            raise ValueError(f"seed must be in 0..{MAX_SEED}")


@dataclass(frozen=True)
class TaskNode:
    """One task: its coordinates, work scale and predecessors."""

    level: int
    index: int
    #: work multiplier relative to one grain unit (grain x jitter)
    scale: float
    #: predecessor task indices in the previous level (empty at level 0)
    preds: tuple[int, ...]


@dataclass(frozen=True)
class TaskGraph:
    """A fully expanded task graph: one tuple of nodes per level."""

    params: TaskGraphParams
    levels: tuple[tuple[TaskNode, ...], ...]

    @property
    def n_tasks(self) -> int:
        return sum(len(lvl) for lvl in self.levels)

    def edges(self) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        """All dependence edges as ((level-1, pred), (level, index))."""
        out = []
        for lvl in self.levels:
            for node in lvl:
                for p in node.preds:
                    out.append(((node.level - 1, p),
                                (node.level, node.index)))
        return out

    def fingerprint(self) -> str:
        """SHA-256 over the canonical serialization of the graph.

        Same (topology, params, seed) => identical fingerprint, on any
        platform; any structural or magnitude change alters it.
        """
        doc = {
            "topology": self.params.topology,
            "width": self.params.width,
            "depth": self.params.depth,
            "grain": self.params.grain,
            "seed": self.params.seed,
            "levels": [
                [[n.index, repr(n.scale), list(n.preds)] for n in lvl]
                for lvl in self.levels
            ],
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Structure


def level_width(params: TaskGraphParams, level: int) -> int:
    """Number of tasks at ``level`` (structure is seed-independent)."""
    if params.topology == "fanout":
        return 1 if level % 2 == 0 else params.width
    if params.topology == "tree":
        return min(params.width, 2**level if level < 32 else params.width)
    return params.width


def _preds(params: TaskGraphParams, level: int, index: int) -> tuple[int, ...]:
    """Predecessor indices of task ``(level, index)`` in level-1."""
    if level == 0:
        return ()
    prev_w = level_width(params, level - 1)
    topo = params.topology
    if topo == "stencil":
        lo = max(0, index - 1)
        hi = min(prev_w - 1, index + 1)
        return tuple(range(lo, hi + 1))
    if topo == "fanout":
        if level % 2 == 1:
            return (0,)              # fork: every child reads the parent
        return tuple(range(prev_w))  # join: the parent reads every child
    if topo == "tree":
        if prev_w < level_width(params, level):
            return (index // 2,)     # still widening: binary fan-out
        return (min(index, prev_w - 1),)  # width-capped: straight columns
    # mesh: own column plus wrap-around right neighbour
    if prev_w == 1:
        return (0,)
    return tuple(sorted({index % prev_w, (index + 1) % prev_w}))


def _unit(seed: int, level: int, index: int) -> float:
    """Deterministic uniform [0, 1) from the task coordinates."""
    token = f"taskbench|{seed}|{level}|{index}".encode("ascii")
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def generate(params: TaskGraphParams) -> TaskGraph:
    """Expand the factorial coordinates into an explicit task graph."""
    levels = []
    for level in range(params.depth):
        nodes = []
        for index in range(level_width(params, level)):
            jitter = (JITTER_BASE
                      + JITTER_SPAN * _unit(params.seed, level, index))
            nodes.append(TaskNode(
                level=level,
                index=index,
                scale=params.grain * jitter,
                preds=_preds(params, level, index),
            ))
        levels.append(tuple(nodes))
    return TaskGraph(params=params, levels=tuple(levels))


# ----------------------------------------------------------------------
# Compilation onto the workload IR


def _array(level: int) -> str:
    """Shared array holding the outputs of one graph level."""
    return f"tb-l{level}" if level >= 0 else "tb-in"


def _task_phase(node: TaskNode) -> Phase:
    """The compute phase of one task.

    The shared-access records realize the dependence edges for the race
    detector: each task *writes* its own element of the level's output
    array (disjoint within the region -- race-free) and *reads* the hull
    of its predecessors' elements in the previous level's array (the
    inter-region barrier provides the happens-before edge).
    """
    if node.preds:
        read = read_of(_array(node.level - 1),
                       float(min(node.preds)), float(max(node.preds)))
    else:
        read = read_of(_array(-1), float(node.index), float(node.index))
    write = write_of(_array(node.level),
                     float(node.index), float(node.index))
    return make_phase(
        f"task-l{node.level}-{node.index}",
        ops=BASE_OPS * node.scale,
        unique_bytes=BASE_UNIQUE_BYTES * node.scale,
        accesses=(read, write),
    )


def compile_graph(graph: TaskGraph, thread_kind: str = "hw",
                  name: str | None = None) -> Job:
    """Lower a task graph to a level-synchronous :class:`Job`.

    Each level becomes one :class:`ParallelRegion` (one single-phase
    thread per task, so regions stay cohort-eligible); the barrier
    between regions realizes every cross-level dependence edge.  A
    serial setup step materializes the input array and a serial collect
    step reads the final level, bracketing the graph the way the C3I
    jobs bracket their parallel sections.
    """
    if thread_kind not in THREAD_KINDS:
        raise ValueError(
            f"unknown thread kind {thread_kind!r}; "
            f"expected one of {THREAD_KINDS}")
    p = graph.params
    w0 = level_width(p, 0)
    w_last = level_width(p, p.depth - 1)
    steps: list[SerialStep | ParallelRegion] = [SerialStep(make_phase(
        "tb-setup",
        ops=OpCounts(ialu=2.0 * w0, store=float(w0)),
        unique_bytes=8.0 * w0,
        accesses=(write_of(_array(-1), 0.0, float(w0 - 1)),),
    ))]
    for lvl in graph.levels:
        steps.append(ParallelRegion(
            threads=tuple(
                ThreadProgram(f"tb-t{n.level}-{n.index}",
                              (Compute(_task_phase(n)),))
                for n in lvl),
            thread_kind=thread_kind,
        ))
    steps.append(SerialStep(make_phase(
        "tb-collect",
        ops=OpCounts(ialu=2.0 * w_last, load=float(w_last)),
        unique_bytes=8.0 * w_last,
        accesses=(read_of(_array(p.depth - 1), 0.0, float(w_last - 1)),),
    )))
    return Job(name or recipe_name(p, thread_kind), tuple(steps))


# ----------------------------------------------------------------------
# Recipe grammar


def recipe_name(params: TaskGraphParams, thread_kind: str) -> str:
    """Format the canonical recipe key of a (graph, thread-kind) pair."""
    return (f"tb-{params.topology}-w{params.width}-d{params.depth}"
            f"-g{params.grain}-s{params.seed}-{thread_kind}")


def parse_recipe(key: str) -> tuple[TaskGraphParams, str]:
    """Parse ``tb-<topo>-w<W>-d<D>-g<G>-s<S>-<kind>`` or raise KeyError.

    Validation mirrors generation exactly (bounds included) without
    building anything, so the service protocol can vet requests cheaply.
    """
    parts = key.split("-")
    if len(parts) != 7 or parts[0] != "tb":
        raise KeyError(f"malformed taskbench recipe {key!r}")
    _, topo, w, d, g, s, kind = parts
    if kind not in THREAD_KINDS:
        raise KeyError(f"bad thread kind in taskbench recipe {key!r}")
    fields = {}
    for text, prefix in ((w, "w"), (d, "d"), (g, "g"), (s, "s")):
        if (len(text) < 2 or not text.startswith(prefix)
                or not text[1:].isdigit()):
            raise KeyError(f"malformed taskbench recipe {key!r}")
        fields[prefix] = int(text[1:])
    try:
        params = TaskGraphParams(topology=topo, width=fields["w"],
                                 depth=fields["d"], grain=fields["g"],
                                 seed=fields["s"])
    except ValueError as exc:
        raise KeyError(f"bad taskbench recipe {key!r}: {exc}") from exc
    return params, kind


def job_from_recipe(key: str) -> Job:
    """Generate and compile the graph a recipe names."""
    params, kind = parse_recipe(key)
    return compile_graph(generate(params), kind, name=key)


def recipe_weight(key: str) -> int:
    """Scheduling weight of a recipe: total grain units in the graph
    (the parallel runner drains largest-first).  1 if unparseable."""
    try:
        params, _ = parse_recipe(key)
    except KeyError:
        return 1
    n_tasks = sum(level_width(params, lvl) for lvl in range(params.depth))
    return max(1, n_tasks * params.grain)


# ----------------------------------------------------------------------
# Negative control


def missync_mesh_job(width: int = 4, depth: int = 3) -> Job:
    """A deliberately mis-synchronized mesh: the race-detector fixture.

    Each task writes its *neighbour's* element of the level array as
    well as its own -- the classic forgotten-halo bug in a wrap-around
    stencil.  Same-level writes overlap between threads of one region,
    so the happens-before analysis must report a data race.
    """
    params = TaskGraphParams("mesh", width, depth)
    graph = generate(params)
    steps: list[SerialStep | ParallelRegion] = [SerialStep(make_phase(
        "tb-setup",
        ops=OpCounts(ialu=2.0 * width, store=float(width)),
        unique_bytes=8.0 * width,
        accesses=(write_of(_array(-1), 0.0, float(width - 1)),),
    ))]
    for lvl in graph.levels:
        threads = []
        for n in lvl:
            touched = sorted({float(n.index), float((n.index + 1) % width)})
            phase = make_phase(
                f"task-l{n.level}-{n.index}",
                ops=BASE_OPS * n.scale,
                unique_bytes=BASE_UNIQUE_BYTES * n.scale,
                accesses=(
                    read_of(_array(n.level - 1),
                            float(min(n.preds or (n.index,))),
                            float(max(n.preds or (n.index,)))),
                    # BUG (deliberate): writes the wrap-around hull, so
                    # neighbouring threads' write ranges overlap.
                    write_of(_array(n.level), touched[0], touched[-1]),
                ),
            )
            threads.append(ThreadProgram(f"tb-t{n.level}-{n.index}",
                                         (Compute(phase),)))
        steps.append(ParallelRegion(tuple(threads), "os"))
    return Job(f"tb-mesh-missync-w{width}-d{depth}", tuple(steps))
