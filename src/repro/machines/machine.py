"""Execution-driven performance simulation of conventional SMPs.

A :class:`ConventionalMachine` turns a :class:`~repro.workload.Job`
into DES processes:

* Compute demand (cycles) is served by a processor pool modelled as a
  fair-share server: capacity ``n_cpus * clock``, per-thread cap one
  CPU's clock.  One thread per CPU runs uncontended; more threads than
  CPUs time-slice.
* Cache-miss traffic (bytes, from the macro locality model) is served
  by a shared bus: capacity = sustainable bandwidth, per-thread cap =
  what one in-order CPU can pull with a single outstanding miss.
  Memory-bound programs therefore stop scaling when the aggregate
  demand hits the bus -- the effect behind Tables 9 and 10.
* Compute and memory alternate in slices within each phase (in-order
  CPUs overlap little), so contention interleaves realistically.
* Locks are DES mutexes; acquiring one costs the platform's
  synchronization cycles.  Thread creation bills the parent the
  platform's (large) creation cost per thread.

Phases with internal ``parallelism > 1`` are *not* exploited by
default -- a conventional machine has no cheap fine-grained threads.
Passing ``exploit_fine_grained=True`` makes the machine spawn software
threads for them, paying the creation cost per strand; this exists to
reproduce the paper's observation that inner-loop parallelization is
not practical on these platforms.

Serial steps and homogeneous regions (see
:mod:`repro.workload.cohort`) take a vectorized fast path by default
-- the same timeline computed without per-thread DES processes.  Set
``REPRO_NO_COHORT=1`` (or pass ``use_cohort=False``) to force
everything through the DES path; the two agree on simulated seconds to
well within 1e-9 relative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.des import (
    AllOf,
    FairShareServer,
    Simulator,
    SimLock,
    Store,
)
from repro.obs.metrics import (
    MachineMetrics,
    hist_fields,
    lock_summary_from_resources,
    merge_lock_summaries,
)
from repro.obs.trace import active_tracer
from repro.workload.describe import step_label
from repro.workload.phase import Phase
from repro.workload.task import (
    Compute,
    Critical,
    Job,
    ParallelRegion,
    SerialStep,
    ThreadProgram,
    WorkQueueRegion,
)

from repro.workload.cohort import cohort_enabled

from repro.machines import cohort
from repro.machines.locality import miss_traffic_bytes
from repro.machines.spec import MachineSpec


@dataclass(frozen=True)
class RunResult:
    """Outcome of simulating one job on one machine."""

    machine: str
    job: str
    seconds: float
    cpu_utilization: float
    bus_utilization: float
    lock_wait_seconds: float
    n_threads_peak: int
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0


class ConventionalMachine:
    """DES performance model of a cache-based shared-memory machine."""

    def __init__(self, spec: MachineSpec, slices_per_phase: int = 16,
                 exploit_fine_grained: bool = False,
                 use_cohort: bool | None = None):
        if slices_per_phase < 1:
            raise ValueError("slices_per_phase must be >= 1")
        self.spec = spec
        self.slices_per_phase = slices_per_phase
        self.exploit_fine_grained = exploit_fine_grained
        self.use_cohort = (cohort_enabled() if use_cohort is None
                           else bool(use_cohort))

    # ------------------------------------------------------------------
    def run(self, job: Job) -> RunResult:
        spec = self.spec
        sim = Simulator()
        tracer = active_tracer()
        metrics = MachineMetrics(tracer)
        if tracer is not None:
            tracer.begin_run(f"{spec.name}/{job.name}")
            sim.trace = tracer
        clock = spec.core.clock_hz
        cpu = FairShareServer(
            sim, capacity=spec.n_cpus * clock, per_customer_cap=clock,
            name="cpu-pool")
        bus = FairShareServer(
            sim, capacity=spec.mem.bandwidth_bytes_per_s,
            per_customer_cap=spec.per_cpu_mem_bandwidth, name="bus")
        locks: dict[str, SimLock] = {}
        peak = [1]
        # cohort-vs-DES coverage and fast-path lock statistics
        acct = {"cohort_regions": 0, "des_regions": 0,
                "cohort_serial_steps": 0, "des_serial_steps": 0,
                "closed_form_regions": 0, "queue_solver_regions": 0,
                "drained_grants": 0,
                "stepped_grants": 0, "engine_events": 0,
                "locks": {"waits": 0, "wait_time": 0.0, "convoy_max": 0,
                          "hist": {}}}

        main = sim.process(
            self._job_body(sim, job, cpu, bus, locks, peak, acct,
                           metrics),
            name=job.name)
        sim.run_all(main)
        if tracer is not None:
            tracer.end_run(sim.now)

        total = sim.now
        lock_sum = merge_lock_summaries(
            lock_summary_from_resources(locks.values()), acct["locks"])
        stats = {
            "cpu_busy_time": cpu.busy_time,
            "bus_busy_time": bus.busy_time,
            "lock_acquisitions": float(lock_sum["waits"]),
            "cohort_regions": float(acct["cohort_regions"]),
            "des_regions": float(acct["des_regions"]),
            "cohort_serial_steps": float(acct["cohort_serial_steps"]),
            "des_serial_steps": float(acct["des_serial_steps"]),
            "closed_form_regions": float(acct["closed_form_regions"]),
            "queue_solver_regions": float(acct["queue_solver_regions"]),
            "cohort_drained_grants": float(acct["drained_grants"]),
            "cohort_stepped_grants": float(acct["stepped_grants"]),
            "cohort_engine_events": float(acct["engine_events"]),
            "lock_wait_time": lock_sum["wait_time"],
            "lock_convoy_max": float(lock_sum["convoy_max"]),
        }
        stats.update(metrics.rollup())
        stats.update(hist_fields(lock_sum["hist"]))
        return RunResult(
            machine=spec.name,
            job=job.name,
            seconds=total,
            cpu_utilization=cpu.utilization(total) if total > 0 else 0.0,
            bus_utilization=bus.utilization(total) if total > 0 else 0.0,
            lock_wait_seconds=lock_sum["wait_time"],
            n_threads_peak=peak[0],
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _lock(self, sim: Simulator, locks: dict[str, SimLock],
              name: str) -> SimLock:
        if name not in locks:
            locks[name] = SimLock(sim, name=name)
        return locks[name]

    def _job_body(self, sim, job, cpu, bus, locks, peak, acct, metrics):
        # ``cursor`` runs ahead of sim.now through fast-path steps; one
        # timeout folds the accumulated span back into the DES clock
        # before (and after) any step that needs real events.
        spec = self.spec
        cursor = sim.now
        for i, step in enumerate(job.steps):
            label = step_label(step, i)
            if isinstance(step, SerialStep):
                if self.use_cohort:
                    t0 = cursor
                    cursor = cohort.run_serial_phase(
                        self, step.phase, cursor, cpu, bus)
                    acct["cohort_serial_steps"] += 1
                    metrics.region("serial", "cohort", label, t0, cursor)
                    continue
                acct["des_serial_steps"] += 1
                if cursor > sim.now:
                    yield sim.timeout(cursor - sim.now)
                t0 = sim.now
                yield from self._run_phase(sim, step.phase, cpu, bus)
                cursor = sim.now
                metrics.region("serial", "des", label, t0, cursor)
            elif isinstance(step, ParallelRegion):
                peak[0] = max(peak[0], step.n_threads)
                if self.use_cohort and cohort.region_eligible(self, step):
                    t0 = cursor
                    cursor, lock_sum, est = cohort.run_region(
                        self, step, cursor, cpu, bus)
                    acct["cohort_regions"] += 1
                    acct["closed_form_regions"] += est["closed_form"]
                    acct["queue_solver_regions"] += est.get(
                        "queue_solver", 0)
                    acct["drained_grants"] += est["drained_grants"]
                    acct["stepped_grants"] += est["stepped_grants"]
                    acct["engine_events"] += est["events"]
                    merge_lock_summaries(acct["locks"], lock_sum)
                    metrics.region("parallel", "cohort", label, t0,
                                   cursor, step.n_threads)
                    continue
                acct["des_regions"] += 1
                if cursor > sim.now:
                    yield sim.timeout(cursor - sim.now)
                t0 = sim.now
                costs = spec.costs_for(step.thread_kind)
                # the parent creates every thread before any runs
                yield cpu.submit(costs.create_cycles * step.n_threads,
                                 cap=spec.core.clock_hz)
                procs = [
                    sim.process(
                        self._thread_body(sim, th, cpu, bus, locks, costs),
                        name=th.name)
                    for th in step.threads
                ]
                yield AllOf(sim, procs)
                cursor = sim.now
                metrics.region("parallel", "des", label, t0, cursor,
                               step.n_threads)
            elif isinstance(step, WorkQueueRegion):
                peak[0] = max(peak[0], step.n_threads)
                if self.use_cohort and cohort.region_eligible(self, step):
                    t0 = cursor
                    cursor, lock_sum, est = cohort.run_region(
                        self, step, cursor, cpu, bus)
                    acct["cohort_regions"] += 1
                    acct["closed_form_regions"] += est["closed_form"]
                    acct["queue_solver_regions"] += est.get(
                        "queue_solver", 0)
                    acct["drained_grants"] += est["drained_grants"]
                    acct["stepped_grants"] += est["stepped_grants"]
                    acct["engine_events"] += est["events"]
                    merge_lock_summaries(acct["locks"], lock_sum)
                    metrics.region("parallel", "cohort", label, t0,
                                   cursor, step.n_threads)
                    continue
                acct["des_regions"] += 1
                if cursor > sim.now:
                    yield sim.timeout(cursor - sim.now)
                t0 = sim.now
                costs = spec.costs_for(step.thread_kind)
                yield cpu.submit(costs.create_cycles * step.n_threads,
                                 cap=spec.core.clock_hz)
                queue = Store(sim, name="work-queue")
                for item in step.items:
                    queue.put(item)
                procs = [
                    sim.process(
                        self._worker_body(sim, queue, cpu, bus, locks,
                                          costs),
                        name=f"worker-{i}")
                    for i in range(step.n_threads)
                ]
                yield AllOf(sim, procs)
                cursor = sim.now
                metrics.region("parallel", "des", label, t0, cursor,
                               step.n_threads)
            else:  # pragma: no cover - Job validates step types
                raise TypeError(f"unknown job step {step!r}")
        if cursor > sim.now:
            yield sim.timeout(cursor - sim.now)

    def _thread_body(self, sim, program: ThreadProgram, cpu, bus, locks,
                     costs):
        for item in program.items:
            yield from self._run_item(sim, item, cpu, bus, locks, costs)

    def _worker_body(self, sim, queue: Store, cpu, bus, locks, costs):
        clock = self.spec.core.clock_hz
        while True:
            ok, item = queue.try_get()
            if not ok:
                return
            # popping the shared queue is a synchronized operation
            yield cpu.submit(costs.sync_cycles, cap=clock)
            for it in item.items:
                yield from self._run_item(sim, it, cpu, bus, locks, costs)

    def _run_item(self, sim, item, cpu, bus, locks, costs):
        if isinstance(item, Compute):
            yield from self._run_phase(sim, item.phase, cpu, bus)
        elif isinstance(item, Critical):
            lock = self._lock(sim, locks, item.lock)
            grant = yield lock.acquire()
            try:
                yield cpu.submit(costs.sync_cycles,
                                 cap=self.spec.core.clock_hz)
                yield from self._run_phase(sim, item.phase, cpu, bus)
            finally:
                lock.release(grant)
        else:  # pragma: no cover - ThreadProgram validates item types
            raise TypeError(f"unknown thread item {item!r}")

    def _run_phase(self, sim, phase: Phase, cpu, bus):
        spec = self.spec
        clock = spec.core.clock_hz
        compute_cycles = spec.core.compute_cycles(phase.ops)
        cap = clock

        if phase.parallelism > 1 and self.exploit_fine_grained:
            # Spawn software threads for the phase's internal strands:
            # the work can spread over the CPUs, but the parent pays the
            # creation cost per strand, serially, before any strand runs
            # -- the fine-grained-on-SMP disaster.
            sw = spec.costs_for("sw")
            yield cpu.submit(phase.parallelism * sw.create_cycles,
                             cap=clock)
            cap = min(phase.parallelism, spec.n_cpus) * clock

        traffic = miss_traffic_bytes(phase, spec.cache)
        slices = self.slices_per_phase
        cc = compute_cycles / slices
        tb = traffic / slices
        for _ in range(slices):
            if cc > 0:
                yield cpu.submit(cc, cap=cap)
            if tb > 0:
                yield bus.submit(tb)
        if phase.serial_cycles > 0:
            yield sim.timeout(phase.serial_cycles / clock)
