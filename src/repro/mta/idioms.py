"""Classic full/empty-bit programming idioms for the Tera runtime.

The MTA's signature primitive -- a full/empty tag on every word --
supports a family of synchronization idioms at a cycle or two each.
These are the building blocks Tera's documentation taught; they are
used by the examples and give the runtime library-grade utilities:

* :class:`AtomicCounter`  -- ``int_fetch_add`` on a sync variable;
* :class:`BoundedBuffer`  -- a producer/consumer ring of sync cells;
* :class:`ReductionTree`  -- parallel reduction with paired combines;
* :func:`fork_join_map`   -- future-per-element map over an iterable.

All are deterministic under the DES and cost what the hardware costs
(1-cycle synchronized accesses, 2/75-cycle thread creation).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.des import AllOf
from repro.mta.runtime import TeraRuntime


class AtomicCounter:
    """``int_fetch_add`` built from one full/empty word.

    ``add(k)`` atomically adds ``k`` and returns the previous value --
    the idiom behind the shared ``num_intervals`` counter of the
    fine-grained Threat Analysis variant.
    """

    def __init__(self, runtime: TeraRuntime, initial: int = 0,
                 name: str = "counter$"):
        self._rt = runtime
        self._cell = runtime.sync_variable(value=initial, full=True,
                                           name=name)

    def add(self, k: int = 1):
        """Process-style: ``old = yield from counter.add(3)``."""
        old = yield self._cell.read()     # empties the cell: atomic
        yield self._cell.write(old + k)   # refill
        return old

    def value(self) -> int:
        return self._cell.peek()


class BoundedBuffer:
    """A fixed-capacity producer/consumer ring of full/empty cells.

    Producers ``put`` into successive slots (blocking while a slot is
    still full); consumers ``get`` from successive slots (blocking
    while empty).  Slot turns are claimed through atomic counters, so
    any number of producers and consumers may mix.
    """

    def __init__(self, runtime: TeraRuntime, capacity: int,
                 name: str = "buffer$"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._rt = runtime
        self.capacity = capacity
        self._slots = [runtime.sync_variable(name=f"{name}[{i}]")
                       for i in range(capacity)]
        self._head = AtomicCounter(runtime, name=f"{name}.head")
        self._tail = AtomicCounter(runtime, name=f"{name}.tail")

    def put(self, item):
        """Process-style: ``yield from buffer.put(item)``."""
        turn = yield from self._tail.add(1)
        slot = self._slots[turn % self.capacity]
        yield slot.write(item)   # blocks while the slot is still full

    def get(self):
        """Process-style: ``item = yield from buffer.get()``."""
        turn = yield from self._head.add(1)
        slot = self._slots[turn % self.capacity]
        item = yield slot.read()  # blocks while the slot is empty
        return item


class ReductionTree:
    """Parallel reduction: futures combine pairwise up a tree.

    ``reduce(values, op)`` spawns one hardware thread per leaf pair and
    combines in ``ceil(log2(n))`` rounds -- the fine-grained pattern a
    conventional machine cannot afford for small leaves.
    """

    def __init__(self, runtime: TeraRuntime,
                 combine_cycles: float = 10.0):
        self._rt = runtime
        self.combine_cycles = combine_cycles

    def reduce(self, values: Sequence, op: Callable):
        """Process-style: ``total = yield from tree.reduce(vs, add)``."""
        rt = self._rt
        level = list(values)
        combine_cycles = self.combine_cycles

        def combiner(rt, a, b):
            yield rt.cycles(combine_cycles)
            return op(a, b)

        while len(level) > 1:
            futures = []
            carry = None
            if len(level) % 2:
                carry = level[-1]
            for i in range(0, len(level) - 1, 2):
                futures.append(rt.hw_thread(combiner, level[i],
                                            level[i + 1]))
            yield AllOf(rt.sim, [f._process for f in futures])
            level = [f.value() for f in futures]
            if carry is not None:
                level.append(carry)
        return level[0] if level else None


def fork_join_map(runtime: TeraRuntime, fn: Callable,
                  items: Iterable, work_cycles: float = 50.0):
    """Process-style parallel map: one hardware thread per element.

    ``results = yield from fork_join_map(rt, fn, items)`` -- results
    keep the input order regardless of completion order.
    """
    def body(rt, item):
        yield rt.cycles(work_cycles)
        return fn(item)

    futures = [runtime.hw_thread(body, item) for item in items]
    yield AllOf(runtime.sim, [f._process for f in futures])
    return [f.value() for f in futures]
