"""Workload extraction: Threat Analysis runs -> machine-model jobs.

The kernels record structural counts (time steps scanned, trajectory
points computed, intervals emitted, per-threat work); this module
converts them into abstract operation counts through per-event recipes
and assembles the :class:`~repro.workload.Job` descriptions the machine
models execute.

**Scale handling.**  Reduced-scale runs (fewer threats, coarser time
grid) are extrapolated to paper scale by (i) scaling each threat's step
count by the time-resolution ratio and (ii) tiling the measured
per-threat statistics out to the full 1000 threats.  This preserves
both the total work (linear in ``threats x steps``) and the *work
distribution* across threats -- which is what chunk-level load balance
(Table 6) depends on.

The per-event recipes are the calibrated constants of the Threat
Analysis model; see ``repro/harness/calibration.py``.  Structurally:
the feasibility scan is floating-point heavy with a *small* memory
footprint (the paper: "compute-bound ... executes mostly within
cache"), so roughly one op in ten touches memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.workload import (
    AccessPattern,
    Compute,
    Critical,
    Job,
    OpCounts,
    ParallelRegion,
    SerialStep,
    ThreadProgram,
    make_phase,
    read_of,
    write_of,
)

from repro.c3i.threat.chunked import chunk_bounds
from repro.c3i.threat.scenarios import FULL_SCALE, Scenario
from repro.c3i.threat.sequential import ThreatAnalysisResult

# ----------------------------------------------------------------------
# per-event op recipes (calibrated; see harness/calibration.py)
# ----------------------------------------------------------------------

#: one feasibility evaluation of the time-stepped scan: position
#: deltas, slant-range and altitude-band tests, loop control.
OPS_PER_STEP = OpCounts(falu=14.0, ialu=8.0, load=3.0, store=0.3,
                        branch=3.0)

#: one point of the trajectory table (computed once per threat).
OPS_PER_TRAJ_POINT = OpCounts(falu=10.0, ialu=4.0, load=2.0, store=3.0,
                              branch=1.0)

#: the range screen for one (threat, weapon) pair.
OPS_PER_PRECHECK = OpCounts(falu=14.0, ialu=5.0, load=4.0, branch=2.0)

#: emitting one interception interval.
OPS_PER_INTERVAL = OpCounts(ialu=10.0, load=2.0, store=6.0, branch=2.0)

#: per-threat input parsing / table construction (serial).
OPS_SETUP_PER_THREAT = OpCounts(ialu=260.0, falu=60.0, load=150.0,
                                store=110.0, branch=60.0)

#: appending through the shared full/empty counter (fine-grained variant)
OPS_PER_SYNC_APPEND = OpCounts(ialu=6.0, load=1.0, store=5.0, sync=2.0)

#: resident footprint of the scan: threat + weapon tables and working
#: variables -- small, the reason the threads "execute mostly within
#: cache" on the conventional SMPs.
FOOTPRINT_PER_THREAT = 64.0     # bytes
FOOTPRINT_PER_WEAPON = 48.0
FOOTPRINT_FIXED = 8192.0


@dataclass(frozen=True)
class FullScaleThreatStats:
    """Per-threat structural counts tiled/scaled to paper scale."""

    steps: tuple[float, ...]        # per threat, full time resolution
    intervals: tuple[float, ...]    # per threat
    prechecks_per_threat: float
    n_steps_grid: float             # trajectory points per threat

    @property
    def n_threats(self) -> int:
        return len(self.steps)

    @property
    def steps_total(self) -> float:
        return sum(self.steps)

    @property
    def intervals_total(self) -> float:
        return sum(self.intervals)


def full_scale_stats(scenario: Scenario,
                     result: ThreatAnalysisResult) -> FullScaleThreatStats:
    """Tile the measured per-threat work out to the full 1000 threats
    and rescale to the full time resolution."""
    m = scenario.n_threats
    dt = FULL_SCALE.n_steps / scenario.n_steps
    n = FULL_SCALE.n_threats
    steps = tuple(result.steps_per_threat[i % m] * dt for i in range(n))
    intervals = tuple(float(result.intervals_per_threat[i % m])
                      for i in range(n))
    return FullScaleThreatStats(
        steps=steps,
        intervals=intervals,
        prechecks_per_threat=float(scenario.n_weapons),
        n_steps_grid=float(FULL_SCALE.n_steps),
    )


def _scan_ops(steps: float, traj_points: float, prechecks: float,
              intervals: float) -> OpCounts:
    return (OPS_PER_STEP * steps
            + OPS_PER_TRAJ_POINT * traj_points
            + OPS_PER_PRECHECK * prechecks
            + OPS_PER_INTERVAL * intervals)


def _footprint(n_threats: float, n_weapons: float) -> float:
    return (FOOTPRINT_FIXED + n_threats * FOOTPRINT_PER_THREAT
            + n_weapons * FOOTPRINT_PER_WEAPON)


def _setup_phase(scenario: Scenario, stats: FullScaleThreatStats):
    ops = OPS_SETUP_PER_THREAT * stats.n_threats
    return make_phase(
        f"s{scenario.index}-setup", ops,
        unique_bytes=_footprint(stats.n_threats, scenario.n_weapons),
        pattern=AccessPattern.SEQUENTIAL,
        accesses=(write_of("threats", 0, stats.n_threats - 1),),
    )


def _threat_range_ops(stats: FullScaleThreatStats, first: int, last: int
                      ) -> OpCounts:
    """Scan ops of threats [first, last] inclusive, at full scale."""
    n = max(0, last - first + 1)
    steps = sum(stats.steps[first:last + 1])
    intervals = sum(stats.intervals[first:last + 1])
    return _scan_ops(steps, n * stats.n_steps_grid,
                     n * stats.prechecks_per_threat, intervals)


# ----------------------------------------------------------------------
# job builders
# ----------------------------------------------------------------------

def sequential_benchmark_job(
        scenarios: Sequence[Scenario],
        results: Sequence[ThreatAnalysisResult]) -> Job:
    """The benchmark's sequential run: all five scenarios, one thread."""
    steps = []
    for scenario, result in zip(scenarios, results):
        stats = full_scale_stats(scenario, result)
        steps.append(SerialStep(_setup_phase(scenario, stats)))
        ops = _threat_range_ops(stats, 0, stats.n_threats - 1)
        steps.append(SerialStep(make_phase(
            f"s{scenario.index}-scan", ops,
            unique_bytes=_footprint(stats.n_threats, scenario.n_weapons),
            pattern=AccessPattern.SEQUENTIAL,
            accesses=(read_of("threats", 0, stats.n_threats - 1),
                      write_of("intervals"), write_of("num_intervals")),
        )))
    return Job("threat-sequential", tuple(steps))


def chunked_benchmark_job(
        scenarios: Sequence[Scenario],
        results: Sequence[ThreatAnalysisResult],
        n_chunks: int,
        thread_kind: str = "os") -> Job:
    """Program 2: per scenario, a parallel region of ``n_chunks`` chunk
    threads over the full-scale 1000 threats; per-chunk work comes from
    the measured per-threat distribution, so the simulated load
    imbalance is the benchmark's real imbalance."""
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    steps = []
    for scenario, result in zip(scenarios, results):
        stats = full_scale_stats(scenario, result)
        steps.append(SerialStep(_setup_phase(scenario, stats)))
        threads = []
        for c in range(n_chunks):
            first, last = chunk_bounds(stats.n_threats, n_chunks, c)
            n_in_chunk = max(0, last - first + 1)
            ops = _threat_range_ops(stats, first, last)
            # Program 2 writes intervals[chunk][num_intervals[chunk]]:
            # the element extent is opaque at the workload level, so
            # only the compiler's dependence fact (the chunk subscript
            # provably separates iterations) keeps these writes from
            # reading as cross-chunk conflicts.
            accesses = () if n_in_chunk == 0 else (
                read_of("threats", first, last),
                write_of("intervals"),
                write_of("num_intervals"))
            phase = make_phase(
                f"s{scenario.index}-chunk{c}", ops,
                unique_bytes=_footprint(n_in_chunk, scenario.n_weapons),
                pattern=AccessPattern.SEQUENTIAL,
                accesses=accesses,
            )
            threads.append(ThreadProgram(
                f"s{scenario.index}-chunk{c}", (Compute(phase),)))
        steps.append(ParallelRegion(tuple(threads),
                                    thread_kind=thread_kind))
    return Job(f"threat-chunked-{n_chunks}", tuple(steps))


def finegrained_benchmark_job(
        scenarios: Sequence[Scenario],
        results: Sequence[ThreatAnalysisResult],
        max_threads: Optional[int] = 250) -> Job:
    """The sync-variable variant: one thread per threat (coalesced to at
    most ``max_threads`` simulated threads to bound DES cost; the sync
    traffic per append is preserved), appends guarded by the shared
    full/empty counter."""
    steps = []
    for scenario, result in zip(scenarios, results):
        stats = full_scale_stats(scenario, result)
        steps.append(SerialStep(_setup_phase(scenario, stats)))
        n_threads = stats.n_threats
        if max_threads is not None:
            n_threads = min(n_threads, max_threads)
        threads = []
        for i in range(n_threads):
            first, last = chunk_bounds(stats.n_threats, n_threads, i)
            scan = make_phase(
                f"s{scenario.index}-fg{i}",
                _threat_range_ops(stats, first, last),
                unique_bytes=_footprint(last - first + 1,
                                        scenario.n_weapons),
                pattern=AccessPattern.SEQUENTIAL,
                accesses=(read_of("threats", first, last),
                          write_of("trajectory", first, last)),
            )
            appends = sum(stats.intervals[first:last + 1])
            # the shared append is guarded by the num_intervals
            # full/empty counter (the Critical below): every thread
            # holds the same lock, so the whole-array writes are safe
            append = make_phase(
                f"s{scenario.index}-fg{i}-append",
                OPS_PER_SYNC_APPEND * appends,
                unique_bytes=4096.0,
                pattern=AccessPattern.SEQUENTIAL,
                shared_fraction=1.0,
                accesses=(write_of("intervals"),
                          write_of("num_intervals")),
            )
            threads.append(ThreadProgram(
                f"s{scenario.index}-fg{i}",
                (Compute(scan), Critical("num_intervals", append))))
        steps.append(ParallelRegion(tuple(threads), thread_kind="hw"))
    return Job("threat-finegrained", tuple(steps))
