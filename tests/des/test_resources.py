"""Unit tests for Resource and FairShareServer."""

import pytest

from repro.des import DesError, FairShareServer, Resource, Simulator


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------

def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def user(sim, tag, hold):
        with res.request() as req:
            yield req
            log.append(("acq", tag, sim.now))
            yield sim.timeout(hold)
        log.append(("rel", tag, sim.now))

    for tag, hold in [("a", 5), ("b", 5), ("c", 5)]:
        sim.process(user(sim, tag, hold))
    sim.run()
    acquires = {tag: t for op, tag, t in log if op == "acq"}
    assert acquires["a"] == 0 and acquires["b"] == 0
    assert acquires["c"] == 5  # had to wait for a release


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(sim, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield sim.timeout(1)

    for tag in "abcde":
        sim.process(user(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_resource_release_via_context_manager_on_error():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def bad(sim):
        with res.request() as req:
            yield req
            raise RuntimeError("die holding the lock")

    def good(sim):
        yield sim.timeout(0)
        with res.request() as req:
            yield req
            return "got it"

    sim.process(bad(sim))
    p = sim.process(good(sim))
    with pytest.raises(RuntimeError):
        sim.run()
    sim.run()  # continue; resource was released by __exit__
    assert p.value == "got it"


def test_resource_wait_statistics():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, hold):
        with res.request() as req:
            yield req
            yield sim.timeout(hold)

    sim.process(user(sim, 10))
    sim.process(user(sim, 10))
    sim.run()
    assert res.total_waits == 1
    assert res.total_wait_time == 10.0


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_release_unknown_request_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    other = Resource(sim, capacity=1)
    req = other.request()
    with pytest.raises(DesError):
        res.release(req)


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()    # granted
    second = res.request()   # queued
    res.release(second)      # cancel while queued: allowed, no grant
    assert res.queue_length == 0
    res.release(first)
    assert res.count == 0


# ----------------------------------------------------------------------
# FairShareServer
# ----------------------------------------------------------------------

def run_jobs(server, sim, jobs):
    """Submit (start_time, demand) jobs; return dict of completion times."""
    done_at = {}

    def job(sim, idx, start, demand):
        if start:
            yield sim.timeout(start)
        yield server.submit(demand)
        done_at[idx] = sim.now

    for idx, (start, demand) in enumerate(jobs):
        sim.process(job(sim, idx, start, demand))
    sim.run()
    return done_at


def test_single_job_runs_at_full_capacity():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    done = run_jobs(srv, sim, [(0, 50.0)])
    assert done[0] == pytest.approx(5.0)


def test_two_equal_jobs_share_capacity():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    done = run_jobs(srv, sim, [(0, 50.0), (0, 50.0)])
    # each runs at 5 units/s -> both finish at t=10
    assert done[0] == pytest.approx(10.0)
    assert done[1] == pytest.approx(10.0)


def test_short_job_departure_speeds_up_long_job():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    done = run_jobs(srv, sim, [(0, 10.0), (0, 90.0)])
    # Phase 1: both at rate 5 until short job finishes at t=2 (10/5).
    # Phase 2: long job has 80 left, runs at 10 -> finishes at t=10.
    assert done[0] == pytest.approx(2.0)
    assert done[1] == pytest.approx(10.0)


def test_late_arrival_slows_existing_job():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    done = run_jobs(srv, sim, [(0, 100.0), (5, 25.0)])
    # t in [0,5): job0 alone at rate 10, serves 50, 50 left.
    # t >= 5: both at rate 5. job1 needs 5s -> done at 10.
    # job0: 50 left at t=5, serves 25 by t=10, then alone: 25 left at
    # rate 10 -> done at 12.5.
    assert done[1] == pytest.approx(10.0)
    assert done[0] == pytest.approx(12.5)


def test_per_customer_cap_limits_lone_job():
    sim = Simulator()
    # MTA-style: aggregate 21 units/s but each customer capped at 1.
    srv = FairShareServer(sim, capacity=21.0, per_customer_cap=1.0)
    done = run_jobs(srv, sim, [(0, 10.0)])
    assert done[0] == pytest.approx(10.0)  # NOT 10/21


def test_per_customer_cap_aggregate_saturation():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=21.0, per_customer_cap=1.0)
    # 42 customers, 10 work each: rate = 21/42 = 0.5 each -> 20 s.
    done = run_jobs(srv, sim, [(0, 10.0)] * 42)
    for idx in range(42):
        assert done[idx] == pytest.approx(20.0)


def test_per_customer_cap_below_saturation_runs_at_cap():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=21.0, per_customer_cap=1.0)
    # 7 customers: each at the cap (1.0), since 21/7 = 3 > cap.
    done = run_jobs(srv, sim, [(0, 10.0)] * 7)
    for idx in range(7):
        assert done[idx] == pytest.approx(10.0)


def test_zero_demand_completes_immediately():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=1.0)
    done = run_jobs(srv, sim, [(3, 0.0)])
    assert done[0] == pytest.approx(3.0)


def test_negative_demand_rejected():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=1.0)
    with pytest.raises(ValueError):
        srv.submit(-1.0)


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        FairShareServer(sim, capacity=0.0)
    with pytest.raises(ValueError):
        FairShareServer(sim, capacity=1.0, per_customer_cap=0.0)


def test_utilization_accounting():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    run_jobs(srv, sim, [(0, 50.0)])
    # 50 units served over 5 s at capacity 10 -> utilization 1.0
    assert srv.utilization() == pytest.approx(1.0)


def test_utilization_with_idle_period():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)

    def body(sim):
        yield srv.submit(50.0)       # busy [0, 5]
        yield sim.timeout(5.0)       # idle [5, 10]

    sim.process(body(sim))
    sim.run()
    assert srv.utilization() == pytest.approx(0.5)


def test_sequential_submissions_by_one_process():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=2.0)

    def body(sim):
        yield srv.submit(4.0)
        yield srv.submit(6.0)

    p = sim.process(body(sim))
    sim.run_all(p)
    assert sim.now == pytest.approx(5.0)


def test_many_staggered_jobs_conserve_work():
    """Total served work must equal total demand (conservation law)."""
    sim = Simulator()
    srv = FairShareServer(sim, capacity=3.0, per_customer_cap=2.0)
    jobs = [(i * 0.7, 5.0 + (i % 3)) for i in range(25)]
    run_jobs(srv, sim, jobs)
    assert srv.total_served == pytest.approx(sum(d for _s, d in jobs))


# ----------------------------------------------------------------------
# Water-filling with heterogeneous per-job caps
# ----------------------------------------------------------------------

def test_waterfill_capped_job_leftover_redistributed():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    done_at = {}

    def job(sim, idx, demand, cap):
        yield srv.submit(demand, cap=cap)
        done_at[idx] = sim.now

    # job0 capped at 2, job1 uncapped: rates are 2 and 8.
    sim.process(job(sim, 0, 20.0, 2.0))
    sim.process(job(sim, 1, 80.0, None))
    sim.run()
    assert done_at[0] == pytest.approx(10.0)
    assert done_at[1] == pytest.approx(10.0)


def test_waterfill_parallel_phase_gets_multiple_shares():
    """A job with cap p*stream_rate models a phase with parallelism p."""
    sim = Simulator()
    clock = 21.0
    srv = FairShareServer(sim, capacity=clock, per_customer_cap=1.0)
    done_at = {}

    def job(sim, idx, demand, cap=None):
        yield srv.submit(demand, cap=cap)
        done_at[idx] = sim.now

    # One "parallelism 7" job against 3 plain streams: caps 7,1,1,1.
    sim.process(job(sim, "wide", 70.0, 7.0))
    for i in range(3):
        sim.process(job(sim, i, 10.0))
    sim.run()
    # Total cap demand 10 < capacity 21, so everyone runs at cap.
    assert done_at["wide"] == pytest.approx(10.0)
    for i in range(3):
        assert done_at[i] == pytest.approx(10.0)


def test_waterfill_saturation_with_wide_job():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0, per_customer_cap=1.0)
    done_at = {}

    def job(sim, idx, demand, cap=None):
        yield srv.submit(demand, cap=cap)
        done_at[idx] = sim.now

    # Wide job cap 20 > capacity; 5 plain jobs capped at 1 each.
    # Plain jobs: share = 10/6 = 1.67 > 1 -> rate 1. Wide gets 10-5=5.
    sim.process(job(sim, "wide", 50.0, 20.0))
    for i in range(5):
        sim.process(job(sim, i, 10.0))
    sim.run()
    for i in range(5):
        assert done_at[i] == pytest.approx(10.0)
    assert done_at["wide"] == pytest.approx(10.0)


def test_waterfill_invalid_cap_rejected():
    sim = Simulator()
    srv = FairShareServer(sim, capacity=10.0)
    with pytest.raises(ValueError):
        srv.submit(1.0, cap=0.0)
