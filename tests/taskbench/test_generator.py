"""Property suite for the task-graph workload generator.

The generator's contract, pinned by construction-independent checks:
bit-identical regeneration (the fingerprint is the cache/golden-test
anchor), acyclicity and level-locality of every dependence edge,
seed-independence of the *structure* (seeds move magnitudes only),
bounded jitter, a total recipe-grammar round-trip, and compilation to
a well-formed level-synchronous :class:`~repro.workload.task.Job`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.taskbench import (
    BASE_OPS,
    JITTER_BASE,
    JITTER_SPAN,
    MAX_DEPTH,
    MAX_SEED,
    MAX_WIDTH,
    THREAD_KINDS,
    TOPOLOGIES,
    TaskGraphParams,
    compile_graph,
    generate,
    job_from_recipe,
    level_width,
    parse_recipe,
    recipe_name,
    recipe_weight,
)
from repro.workload.task import Job, ParallelRegion, SerialStep

#: compact strategies -- small enough to generate thousands of graphs,
#: wide enough to hit every structural case (width 1, widening trees,
#: clipped stencil halos, fanout parity, wrap-around meshes)
params_st = st.builds(
    TaskGraphParams,
    topology=st.sampled_from(TOPOLOGIES),
    width=st.integers(min_value=1, max_value=24),
    depth=st.integers(min_value=1, max_value=10),
    grain=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=MAX_SEED),
)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(params_st)
def test_regeneration_is_bit_identical(params):
    a, b = generate(params), generate(params)
    assert a == b
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_golden():
    # pins the hash across Python versions and platforms; a change here
    # invalidates every cached taskbench cell and must be deliberate
    g = generate(TaskGraphParams("stencil", 4, 3, 2, 7))
    assert g.fingerprint() == (
        "cc9ffc65374f54b8ccf538e2e99ac1b5b5b2984e938e721ccbd10ded048f1a30")


@settings(max_examples=60, deadline=None)
@given(params_st, st.integers(min_value=0, max_value=MAX_SEED))
def test_seed_moves_magnitudes_never_structure(params, other_seed):
    import dataclasses

    a = generate(params)
    b = generate(dataclasses.replace(params, seed=other_seed))
    # identical structure: same level widths, same dependence edges
    assert [len(lvl) for lvl in a.levels] == [len(lvl) for lvl in b.levels]
    assert a.edges() == b.edges()
    if other_seed == params.seed:
        assert a.fingerprint() == b.fingerprint()


def test_different_seeds_differ_in_fingerprint():
    p = TaskGraphParams("mesh", 8, 4)
    import dataclasses

    q = dataclasses.replace(p, seed=1)
    assert generate(p).fingerprint() != generate(q).fingerprint()


# ----------------------------------------------------------------------
# structure: bounds, acyclicity, connectivity, jitter band
# ----------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(params_st)
def test_structure_invariants(params):
    g = generate(params)
    assert len(g.levels) == params.depth
    assert g.n_tasks == sum(level_width(params, lvl)
                            for lvl in range(params.depth))
    for level, lvl in enumerate(g.levels):
        assert 1 <= len(lvl) <= params.width
        assert len(lvl) == level_width(params, level)
        prev_w = level_width(params, level - 1) if level else 0
        for i, node in enumerate(lvl):
            assert (node.level, node.index) == (level, i)
            if level == 0:
                assert node.preds == ()
            else:
                # acyclic + level-local by construction: every edge
                # points at a real task one level up, and every task
                # past level 0 is reachable (>= 1 predecessor)
                assert node.preds
                assert all(0 <= p < prev_w for p in node.preds)
                assert list(node.preds) == sorted(set(node.preds))
            lo = JITTER_BASE * params.grain
            hi = (JITTER_BASE + JITTER_SPAN) * params.grain
            assert lo <= node.scale < hi


@settings(max_examples=80, deadline=None)
@given(params_st)
def test_edges_are_acyclic(params):
    # topological order is the level order; every edge strictly
    # increases the level, so no cycle can exist
    for (src_lvl, _), (dst_lvl, _) in generate(params).edges():
        assert dst_lvl == src_lvl + 1


# ----------------------------------------------------------------------
# compilation to the workload IR
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(params_st, st.sampled_from(THREAD_KINDS))
def test_compiles_to_level_synchronous_job(params, kind):
    g = generate(params)
    job = compile_graph(g, kind)
    assert isinstance(job, Job)
    assert job.name == recipe_name(params, kind)
    # setup + one region per level + collect
    assert len(job.steps) == params.depth + 2
    assert isinstance(job.steps[0], SerialStep)
    assert isinstance(job.steps[-1], SerialStep)
    regions = [s for s in job.steps if isinstance(s, ParallelRegion)]
    assert len(regions) == params.depth
    for level, region in enumerate(regions):
        assert region.thread_kind == kind
        assert len(region.threads) == len(g.levels[level])
        for thread in region.threads:
            assert len(thread.items) == 1  # single-phase: cohort-eligible
    # the graph's work survives lowering: ops scale with n_tasks x grain
    floor = g.n_tasks * params.grain * JITTER_BASE * BASE_OPS.total
    assert job.total_ops.total >= floor


def test_compile_rejects_unknown_thread_kind():
    g = generate(TaskGraphParams("stencil", 2, 2))
    with pytest.raises(ValueError):
        compile_graph(g, "fibers")


# ----------------------------------------------------------------------
# recipe grammar
# ----------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(params_st, st.sampled_from(THREAD_KINDS))
def test_recipe_round_trip_is_total(params, kind):
    key = recipe_name(params, kind)
    parsed, parsed_kind = parse_recipe(key)
    assert parsed == params
    assert parsed_kind == kind
    assert recipe_name(parsed, parsed_kind) == key


@pytest.mark.parametrize("bad", [
    "tb-stencil-w8-d4-g1-s0",          # missing kind
    "tb-stencil-w8-d4-g1-s0-user",     # unknown kind
    "tb-spiral-w8-d4-g1-s0-hw",        # unknown topology
    "tb-stencil-w0-d4-g1-s0-hw",       # width below bounds
    f"tb-stencil-w{MAX_WIDTH + 1}-d4-g1-s0-hw",
    f"tb-stencil-w8-d{MAX_DEPTH + 1}-g1-s0-hw",
    f"tb-stencil-w8-d4-g1-s{MAX_SEED + 1}-hw",
    "tb-stencil-wx-d4-g1-s0-hw",       # non-numeric field
    "tb-stencil-d4-w8-g1-s0-hw",       # fields out of order
    "tb-stencil-w8-d4-g1-s0-hw-extra",
    "threat-seq",                      # not a taskbench recipe at all
    "tb",
])
def test_malformed_recipes_raise_keyerror(bad):
    with pytest.raises(KeyError):
        parse_recipe(bad)


def test_job_from_recipe_builds_the_named_job():
    key = "tb-tree-w16-d5-g2-s3-sw"
    job = job_from_recipe(key)
    assert job.name == key
    assert len(job.steps) == 5 + 2


@settings(max_examples=60, deadline=None)
@given(params_st, st.sampled_from(THREAD_KINDS))
def test_recipe_weight_counts_grain_units(params, kind):
    n_tasks = sum(level_width(params, lvl) for lvl in range(params.depth))
    assert recipe_weight(recipe_name(params, kind)) \
        == max(1, n_tasks * params.grain)


def test_recipe_weight_defaults_to_one():
    assert recipe_weight("threat-seq") == 1
    assert recipe_weight("tb-bogus") == 1
