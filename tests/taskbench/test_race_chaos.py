"""Race-detector and chaos coverage over the generated workloads.

Positive direction: the registered ``taskbench`` experiment -- MTA,
Exemplar *and* CMT cells -- is race-clean under both engine
extractions, and chaos fault injection over it (including the CMT
archetype) degrades every job monotonically.  Negative direction: the
deliberately mis-synchronized mesh must trip the detector, both as the
registered ``mesh-missync`` fixture and as a synthetic registry
experiment driven through ``run_race`` (exit code 1 -- the CI contract
for a finding in a registered experiment).
"""

import pytest

from repro.analysis.race import run_race
from repro.harness.runner import BenchmarkData
from repro.taskbench import missync_mesh_job

SCALES = dict(threat_scale=0.01, terrain_scale=0.03)


@pytest.fixture(scope="module")
def data():
    return BenchmarkData(**SCALES)


# ----------------------------------------------------------------------
# positive: generated workloads are race-clean, chaos stays monotone
# ----------------------------------------------------------------------

def test_taskbench_experiment_is_race_clean(data, capsys):
    status = run_race(["taskbench"], data)
    assert status == 0
    out = capsys.readouterr().out
    assert "taskbench" in out and "clean" in out
    # the experiment spans all five generated recipes
    from repro.analysis.targets import experiment_jobs

    jobs = experiment_jobs("taskbench", data)
    assert len(jobs) == 5
    assert all(name.startswith("tb-") for name in jobs)


def test_missync_fixture_is_registered_and_trips_both_engines():
    from repro.analysis.fixtures import FIXTURES

    fixture = {fx.name: fx for fx in FIXTURES}["mesh-missync"]
    assert fixture.expected == frozenset({"data-race"})
    for engine in ("des", "cohort"):
        flagged, findings = fixture.check(engine)
        assert flagged, engine
        assert findings
        assert {f.hazard for f in findings} == {"data-race"}


def test_chaos_over_taskbench_covers_mta_and_cmt(data, tmp_path):
    import json

    from repro.faults.chaos import run_chaos

    json_path = tmp_path / "chaos.json"
    status = run_chaos(["taskbench"], data, machines=("mta", "cmt"),
                       json_path=str(json_path))
    assert status == 0
    payload = json.loads(json_path.read_text())
    entries = [e for exp in payload["experiments"] for e in exp["jobs"]]
    machines = {e["machine"] for e in entries}
    assert any("Tera MTA" in m for m in machines)
    assert any("SPARC T3-4" in m for m in machines)
    for entry in entries:
        assert entry["ok"], entry  # faults never speed a job up
        assert entry["job"].startswith("tb-")
        assert entry["faulted_seconds"] >= entry["healthy_seconds"]


def test_chaos_rejects_unknown_machine_archetype(data):
    from repro.faults.chaos import run_chaos

    assert run_chaos(["taskbench"], data, machines=("mta", "gpu")) == 2


# ----------------------------------------------------------------------
# negative control: the detector must catch the planted bug
# ----------------------------------------------------------------------

def test_missync_mesh_as_registered_experiment_exits_one(
        data, monkeypatch, capsys):
    """Plant the broken mesh behind a synthetic experiment id; the
    ``repro race`` driver must report the finding and exit 1."""
    from repro.analysis import targets
    from repro.harness import registry

    monkeypatch.setitem(targets.EXPERIMENT_JOBS, "missync-demo",
                        (lambda d: missync_mesh_job(),))
    monkeypatch.setitem(registry._EXPERIMENTS, "missync-demo",
                        lambda d: None)
    status = run_race(["missync-demo"], data)
    assert status == 1
    out = capsys.readouterr().out
    assert "tb-mesh-missync-w4-d3" in out
    assert "data-race" in out


def test_missync_job_flagged_under_both_engines_directly():
    from repro.analysis.hb import analyze_job_both

    des, cohort = analyze_job_both(missync_mesh_job())
    assert des.findings and cohort.findings
    assert des.findings == cohort.findings
    assert {f.hazard for f in des.findings} == {"data-race"}
