"""Thread programs, parallel regions and whole jobs.

The grammar::

    Job            := [ SerialStep | ParallelRegion | WorkQueueRegion ]*
    SerialStep     := Phase                      (runs on one thread)
    ParallelRegion := [ ThreadProgram ]*         (static partition)
    WorkQueueRegion:= n_threads x shared queue of WorkItems  (dynamic)
    ThreadProgram  := [ Compute(Phase) | Critical(lock, Phase) ]*

This is rich enough to express every program version in the paper:

* the sequential programs: a Job of SerialSteps;
* chunked Threat Analysis (Program 2): one ParallelRegion whose threads
  are the chunks;
* blocked Terrain Masking (Program 4): a WorkQueueRegion whose items are
  threats and whose per-item program ends in Critical sections on the
  per-block locks;
* fine-grained Tera variants: phases with ``parallelism > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.workload.ops import OpCounts
from repro.workload.phase import Phase


@dataclass(frozen=True)
class Compute:
    """Uncontended execution of a phase."""

    phase: Phase


@dataclass(frozen=True)
class Critical:
    """Execution of a phase while holding the named lock."""

    lock: str
    phase: Phase


ThreadItem = Union[Compute, Critical]


@dataclass(frozen=True)
class ThreadProgram:
    """One thread's work: an ordered list of items."""

    name: str
    items: tuple[ThreadItem, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))
        for it in self.items:
            if not isinstance(it, (Compute, Critical)):
                raise TypeError(f"bad thread item {it!r}")

    @property
    def total_ops(self) -> OpCounts:
        out = OpCounts()
        for it in self.items:
            out = out + it.phase.ops
        return out

    @property
    def phases(self) -> list[Phase]:
        return [it.phase for it in self.items]


@dataclass(frozen=True)
class WorkItem:
    """A unit of dynamically scheduled work (e.g. one threat)."""

    name: str
    items: tuple[ThreadItem, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))


@dataclass(frozen=True)
class SerialStep:
    """A phase executed by a single thread between parallel regions."""

    phase: Phase


@dataclass(frozen=True)
class ParallelRegion:
    """A statically partitioned parallel region (one thread per entry).

    ``thread_kind`` selects the creation-cost row of the platform cost
    table: ``"os"`` (kernel threads on the SMPs), ``"sw"`` (Tera
    software threads / futures), ``"hw"`` (Tera compiler-created
    hardware streams).
    """

    threads: tuple[ThreadProgram, ...]
    thread_kind: str = "os"

    def __post_init__(self) -> None:
        object.__setattr__(self, "threads", tuple(self.threads))
        if not self.threads:
            raise ValueError("parallel region needs at least one thread")
        if self.thread_kind not in ("os", "sw", "hw"):
            raise ValueError(
                f"unknown thread kind {self.thread_kind!r}; "
                f"expected one of 'os', 'sw', 'hw'")

    @property
    def n_threads(self) -> int:
        return len(self.threads)


@dataclass(frozen=True)
class WorkQueueRegion:
    """A dynamically scheduled parallel region.

    ``n_threads`` workers repeatedly pull the next :class:`WorkItem`
    from a shared FIFO queue until it is empty -- the "while
    (unprocessed threats)" loop of Program 4.
    """

    items: tuple[WorkItem, ...]
    n_threads: int
    thread_kind: str = "os"

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.thread_kind not in ("os", "sw", "hw"):
            raise ValueError(
                f"unknown thread kind {self.thread_kind!r}; "
                f"expected one of 'os', 'sw', 'hw'")


JobStep = Union[SerialStep, ParallelRegion, WorkQueueRegion]


@dataclass(frozen=True)
class Job:
    """A complete benchmark run: serial steps and parallel regions."""

    name: str
    steps: tuple[JobStep, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        for s in self.steps:
            if not isinstance(s, (SerialStep, ParallelRegion,
                                  WorkQueueRegion)):
                raise TypeError(f"bad job step {s!r}")

    @property
    def total_ops(self) -> OpCounts:
        """Aggregate op counts over every step and thread."""
        out = OpCounts()
        for step in self.steps:
            if isinstance(step, SerialStep):
                out = out + step.phase.ops
            elif isinstance(step, ParallelRegion):
                for th in step.threads:
                    out = out + th.total_ops
            else:
                for item in step.items:
                    for it in item.items:
                        out = out + it.phase.ops
        return out

    @property
    def max_parallel_threads(self) -> int:
        """Widest parallel region in the job."""
        widths = [1]
        for step in self.steps:
            if isinstance(step, ParallelRegion):
                widths.append(step.n_threads)
            elif isinstance(step, WorkQueueRegion):
                widths.append(step.n_threads)
        return max(widths)
