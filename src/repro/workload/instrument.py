"""Operation counters for instrumenting the real benchmark kernels.

The C3I algorithms in :mod:`repro.c3i` do real computation; as they run
they tick an :class:`OpCounter`, which is later converted to
:class:`~repro.workload.ops.OpCounts` for the machine models.  Counting
is kept out of inner loops by ticking per structural event (per time
step, per ring point) with a per-event op recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload.ops import OpCounts


@dataclass
class OpCounter:
    """Accumulates abstract operation counts during a kernel run."""

    ialu: float = 0.0
    falu: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0
    sync: float = 0.0
    #: free-form structural event counts (time steps, ring points, ...)
    events: dict[str, float] = field(default_factory=dict)

    def tick(self, recipe: OpCounts, times: float = 1.0) -> None:
        """Add ``times`` repetitions of a per-event op recipe."""
        self.ialu += recipe.ialu * times
        self.falu += recipe.falu * times
        self.load += recipe.load * times
        self.store += recipe.store * times
        self.branch += recipe.branch * times
        self.sync += recipe.sync * times

    def add(self, **counts: float) -> None:
        for name, v in counts.items():
            if name in ("ialu", "falu", "load", "store", "branch", "sync"):
                setattr(self, name, getattr(self, name) + v)
            else:
                raise AttributeError(f"unknown op class {name!r}")

    def event(self, name: str, times: float = 1.0) -> None:
        self.events[name] = self.events.get(name, 0.0) + times

    def to_ops(self) -> OpCounts:
        return OpCounts(ialu=self.ialu, falu=self.falu, load=self.load,
                        store=self.store, branch=self.branch, sync=self.sync)

    def merge(self, other: "OpCounter") -> None:
        self.tick(other.to_ops())
        for name, v in other.events.items():
            self.event(name, v)
