"""SQLite cross-run index over the ``.repro_runs`` artifacts.

The run directories written by :mod:`repro.harness.rundir` are the
source of truth; this index is a *derived*, queryable view of them:

* ``runs``  -- one row per run (command, timestamps, git rev, model
  epoch, scales, status, check counts, engine-stats rollup).
* ``cells`` -- one row per ``cells.jsonl`` line (cell id, machine,
  job, simulated seconds, per-run stats JSON).
* ``rows``  -- one row per reproduced table row in ``report.json``
  (experiment, label, paper vs simulated), which is what
  ``repro runs diff`` compares.

Because every insert is computed from the artifact files alone --
never from in-process state -- re-indexing is lossless: ``repro runs
reindex`` drops the tables and rebuilds them from the run directories,
and the result is row-identical to the incrementally maintained index
(a property the test suite asserts via :func:`dump_rows`).

The database lives at ``<runs root>/index.sqlite``.  A missing
database is rebuilt on first use, so deleting it (or cloning a repo
with run artifacts but no index) is always safe.
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
from typing import Optional

from repro.harness.rundir import runs_root

#: bumped on any index schema change; a mismatch triggers a rebuild
INDEX_SCHEMA = 1

DB_NAME = "index.sqlite"

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT
);
CREATE TABLE IF NOT EXISTS runs (
    run_id            TEXT PRIMARY KEY,
    command           TEXT,
    started           TEXT,
    finished          TEXT,
    duration_s        REAL,
    status            TEXT,
    exit_status       INTEGER,
    git_rev           TEXT,
    model_epoch       TEXT,
    threat_scale      REAL,
    terrain_scale     REAL,
    jobs              INTEGER,
    flags_json        TEXT,
    n_cells           INTEGER,
    n_experiments     INTEGER,
    checks_passed     INTEGER,
    checks_total      INTEGER,
    engine_stats_json TEXT
);
CREATE TABLE IF NOT EXISTS cells (
    run_id      TEXT,
    seq         INTEGER,
    cell        TEXT,
    kind        TEXT,
    machine     TEXT,
    job         TEXT,
    seconds     REAL,
    seed_offset INTEGER,
    source      TEXT,
    stats_json  TEXT,
    PRIMARY KEY (run_id, seq)
);
CREATE INDEX IF NOT EXISTS idx_cells_cell ON cells(cell);
CREATE TABLE IF NOT EXISTS rows (
    run_id        TEXT,
    experiment_id TEXT,
    label         TEXT,
    paper         REAL,
    simulated     REAL,
    unit          TEXT,
    PRIMARY KEY (run_id, experiment_id, label)
);
"""


def db_path(root: Optional[str] = None) -> str:
    return os.path.join(root or runs_root(), DB_NAME)


def connect(root: Optional[str] = None) -> sqlite3.Connection:
    """Open (creating if needed) the index for a runs root."""
    root = root or runs_root()
    os.makedirs(root, exist_ok=True)
    conn = sqlite3.connect(db_path(root))
    conn.executescript(_TABLES)
    row = conn.execute(
        "SELECT value FROM meta WHERE key = 'schema'").fetchone()
    if row is None:
        conn.execute("INSERT INTO meta (key, value) VALUES (?, ?)",
                     ("schema", str(INDEX_SCHEMA)))
        conn.commit()
    elif row[0] != str(INDEX_SCHEMA):
        # stale schema: wipe and let callers rebuild from artifacts
        conn.executescript(
            "DELETE FROM runs; DELETE FROM cells; DELETE FROM rows;")
        conn.execute("UPDATE meta SET value = ? WHERE key = 'schema'",
                     (str(INDEX_SCHEMA),))
        conn.commit()
        _index_all(conn, root)
    return conn


# ----------------------------------------------------------------------
# indexing (artifacts -> rows)
# ----------------------------------------------------------------------

def _load_json(path: str) -> Optional[dict]:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def index_run(conn: sqlite3.Connection, run_dir: str) -> bool:
    """(Re-)index one run directory from its artifact files.

    Everything inserted is read from ``manifest.json`` /
    ``cells.jsonl`` / ``report.json`` -- never from live state -- so
    incremental indexing and :func:`reindex` produce identical rows.
    Returns ``False`` (and indexes nothing) when the manifest is
    missing or unreadable.
    """
    manifest = _load_json(os.path.join(run_dir, "manifest.json"))
    if not isinstance(manifest, dict) or "run_id" not in manifest:
        return False
    run_id = manifest["run_id"]
    flags = manifest.get("flags") or {}
    report = _load_json(os.path.join(run_dir, "report.json"))
    summary = manifest.get("report") or {}

    conn.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))
    conn.execute("DELETE FROM cells WHERE run_id = ?", (run_id,))
    conn.execute("DELETE FROM rows WHERE run_id = ?", (run_id,))
    conn.execute(
        "INSERT INTO runs VALUES "
        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        (run_id,
         manifest.get("command"),
         manifest.get("started"),
         manifest.get("finished"),
         manifest.get("duration_s"),
         manifest.get("status"),
         manifest.get("exit_status"),
         manifest.get("git_rev"),
         manifest.get("model_epoch"),
         flags.get("threat_scale"),
         flags.get("terrain_scale"),
         flags.get("jobs"),
         json.dumps(flags, sort_keys=True),
         manifest.get("n_cells", 0),
         summary.get("experiments"),
         summary.get("checks_passed"),
         summary.get("checks_total"),
         json.dumps(manifest.get("engine_stats") or {},
                    sort_keys=True)))

    cells_path = os.path.join(run_dir, "cells.jsonl")
    if os.path.exists(cells_path):
        with open(cells_path, encoding="utf-8") as fh:
            for n, raw in enumerate(fh):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except ValueError:
                    continue  # torn final line of a crashed run
                conn.execute(
                    "INSERT INTO cells VALUES "
                    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (run_id, line.get("seq", n), line.get("cell"),
                     line.get("kind"), line.get("machine"),
                     line.get("job"), line.get("seconds"),
                     line.get("seed_offset", 0), line.get("source"),
                     json.dumps(line.get("stats") or {},
                                sort_keys=True)))

    if isinstance(report, dict):
        for result in report.get("results") or ():
            for row in result.get("rows") or ():
                conn.execute(
                    "INSERT OR REPLACE INTO rows VALUES "
                    "(?, ?, ?, ?, ?, ?)",
                    (run_id, result.get("experiment_id"),
                     row.get("label"), row.get("paper"),
                     row.get("simulated"), row.get("unit")))
    return True


def index_run_dir(run_dir: str, root: Optional[str] = None) -> None:
    """Index one finished run into the live database (commit + close)."""
    conn = connect(root)
    try:
        index_run(conn, run_dir)
        conn.commit()
    finally:
        conn.close()


def run_dirs(root: Optional[str] = None) -> list[str]:
    """Every run directory under the root, sorted by run id."""
    root = root or runs_root()
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return []
    return [os.path.join(root, n) for n in names
            if os.path.isfile(os.path.join(root, n, "manifest.json"))]


def _index_all(conn: sqlite3.Connection, root: str) -> int:
    n = 0
    for run_dir in run_dirs(root):
        n += index_run(conn, run_dir)
    conn.commit()
    return n


def reindex(root: Optional[str] = None) -> tuple[int, int]:
    """Drop and rebuild the whole index from the run artifacts.

    Returns ``(runs indexed, cell rows)``.  Lossless by construction:
    the rebuild runs the same :func:`index_run` over the same files
    the live index was maintained from.
    """
    root = root or runs_root()
    conn = connect(root)
    try:
        conn.executescript(
            "DELETE FROM runs; DELETE FROM cells; DELETE FROM rows;")
        n = _index_all(conn, root)
        cells = conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]
        return n, cells
    finally:
        conn.close()


def dump_rows(conn: sqlite3.Connection) -> dict[str, list[tuple]]:
    """Deterministic full dump of every indexed table.

    The re-indexing losslessness contract is stated over this dump:
    ``dump_rows(live) == dump_rows(rebuilt)``.
    """
    out: dict[str, list[tuple]] = {}
    for table, order in (("runs", "run_id"),
                         ("cells", "run_id, seq"),
                         ("rows", "run_id, experiment_id, label")):
        out[table] = list(conn.execute(
            f"SELECT * FROM {table} ORDER BY {order}"))
    return out


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------

def resolve_run(conn: sqlite3.Connection, prefix: str) -> str:
    """A unique run id from a prefix; raises KeyError otherwise."""
    hits = [r[0] for r in conn.execute(
        "SELECT run_id FROM runs WHERE run_id LIKE ? "
        "ORDER BY run_id", (prefix + "%",))]
    if len(hits) == 1:
        return hits[0]
    if not hits:
        raise KeyError(f"no indexed run matches {prefix!r} "
                       f"(try `repro runs reindex`)")
    raise KeyError(f"{prefix!r} is ambiguous: matches "
                   + ", ".join(hits))


def _since_started(conn: sqlite3.Connection, token: str) -> str:
    """Resolve ``--since`` to a ``started`` lower bound.

    The token may be a run-id prefix, a git-rev prefix (the earliest
    run at that rev anchors the window), or an ISO timestamp prefix
    used verbatim.
    """
    row = conn.execute(
        "SELECT MIN(started) FROM runs "
        "WHERE run_id LIKE ? OR git_rev LIKE ?",
        (token + "%", token + "%")).fetchone()
    if row and row[0]:
        return row[0]
    return token


def list_runs(conn: sqlite3.Connection,
              limit: Optional[int] = None) -> list[dict]:
    """Newest-first run summaries for ``repro runs list``."""
    sql = ("SELECT run_id, command, started, duration_s, status, "
           "n_cells, checks_passed, checks_total FROM runs "
           "ORDER BY started DESC, run_id DESC")
    if limit is not None:
        sql += f" LIMIT {int(limit)}"
    cols = ("run_id", "command", "started", "duration_s", "status",
            "n_cells", "checks_passed", "checks_total")
    return [dict(zip(cols, r)) for r in conn.execute(sql)]


def query_cells(conn: sqlite3.Connection, cell: Optional[str] = None,
                since: Optional[str] = None,
                limit: Optional[int] = None) -> list[dict]:
    """Cell trajectory across runs, oldest first.

    ``cell`` matches the cell id exactly, or as a substring when no
    exact match exists (so ``--cell exemplar16`` finds every Exemplar
    cell without knowing the full slug).
    """
    where, params = [], []
    if cell:
        exact = conn.execute(
            "SELECT 1 FROM cells WHERE cell = ? LIMIT 1",
            (cell,)).fetchone()
        if exact:
            where.append("c.cell = ?")
            params.append(cell)
        else:
            where.append("c.cell LIKE ?")
            params.append(f"%{cell}%")
    if since:
        where.append("r.started >= ?")
        params.append(_since_started(conn, since))
    sql = ("SELECT r.run_id, r.started, r.git_rev, r.command, c.cell, "
           "c.kind, c.seconds, c.seed_offset, c.stats_json "
           "FROM cells c JOIN runs r ON r.run_id = c.run_id")
    if where:
        sql += " WHERE " + " AND ".join(where)
    sql += " ORDER BY r.started, r.run_id, c.seq"
    if limit is not None:
        sql += f" LIMIT {int(limit)}"
    cols = ("run_id", "started", "git_rev", "command", "cell", "kind",
            "seconds", "seed_offset", "stats")
    out = []
    for r in conn.execute(sql, params):
        rec = dict(zip(cols, r))
        rec["stats"] = json.loads(rec["stats"] or "{}")
        out.append(rec)
    return out


def diff_runs(conn: sqlite3.Connection, run_a: str, run_b: str,
              rel_tol: float = 1e-9) -> dict:
    """Row-level comparison of two runs' reproduced tables."""
    def rows_of(run_id: str) -> dict[tuple[str, str], tuple]:
        return {(eid, label): (paper, simulated, unit)
                for eid, label, paper, simulated, unit in conn.execute(
                    "SELECT experiment_id, label, paper, simulated, "
                    "unit FROM rows WHERE run_id = ?", (run_id,))}

    a, b = rows_of(run_a), rows_of(run_b)
    changed = []
    for key in sorted(a.keys() & b.keys()):
        sim_a, sim_b = a[key][1], b[key][1]
        if sim_a is None or sim_b is None:
            if sim_a != sim_b:
                changed.append((key, sim_a, sim_b))
            continue
        denom = max(abs(sim_a), abs(sim_b), 1e-300)
        if abs(sim_a - sim_b) / denom > rel_tol:
            changed.append((key, sim_a, sim_b))
    return {
        "run_a": run_a,
        "run_b": run_b,
        "common": len(a.keys() & b.keys()),
        "only_a": sorted(a.keys() - b.keys()),
        "only_b": sorted(b.keys() - a.keys()),
        "changed": changed,
    }


# ----------------------------------------------------------------------
# CLI (``repro runs ...``)
# ----------------------------------------------------------------------

def _ensure_indexed(root: Optional[str] = None) -> None:
    """Build the index from artifacts if the database is missing."""
    root = root or runs_root()
    if not os.path.exists(db_path(root)) and run_dirs(root):
        reindex(root)


def cmd_list(limit: Optional[int] = None) -> int:
    _ensure_indexed()
    conn = connect()
    try:
        runs = list_runs(conn, limit=limit)
    finally:
        conn.close()
    if not runs:
        print(f"no runs indexed under {os.path.abspath(runs_root())} "
              f"(run `repro all`, or `repro runs reindex`)")
        return 0
    print(f"{'run_id':<34} {'command':<8} {'started':<20} "
          f"{'dur (s)':>8} {'status':<7} {'cells':>5} {'checks':>7}")
    print("-" * 96)
    for r in runs:
        dur = ("-" if r["duration_s"] is None
               else f"{r['duration_s']:.1f}")
        checks = ("-" if r["checks_total"] is None
                  else f"{r['checks_passed']}/{r['checks_total']}")
        print(f"{r['run_id']:<34} {r['command']:<8} "
              f"{r['started'] or '-':<20} {dur:>8} "
              f"{r['status'] or '-':<7} {r['n_cells']:>5d} "
              f"{checks:>7}")
    return 0


def cmd_show(prefix: str) -> int:
    _ensure_indexed()
    conn = connect()
    try:
        try:
            run_id = resolve_run(conn, prefix)
        except KeyError as exc:
            print(f"runs show: {exc.args[0]}", file=sys.stderr)
            return 2
        cols = [d[0] for d in conn.execute(
            "SELECT * FROM runs LIMIT 0").description]
        row = conn.execute("SELECT * FROM runs WHERE run_id = ?",
                           (run_id,)).fetchone()
        run = dict(zip(cols, row))
        cells = conn.execute(
            "SELECT cell, kind, seconds FROM cells WHERE run_id = ? "
            "ORDER BY seq", (run_id,)).fetchall()
    finally:
        conn.close()

    for field in ("run_id", "command", "status", "exit_status",
                  "started", "finished", "duration_s", "git_rev",
                  "model_epoch", "threat_scale", "terrain_scale",
                  "jobs"):
        print(f"{field + ':':<15}{run[field]}")
    if run["checks_total"] is not None:
        print(f"{'checks:':<15}{run['checks_passed']}/"
              f"{run['checks_total']} passed "
              f"({run['n_experiments']} experiments)")
    stats = json.loads(run["engine_stats_json"] or "{}")
    if stats.get("sim_runs"):
        print(f"{'engine:':<15}{stats['sim_runs']:.0f} sims, "
              f"{stats['simulated_seconds']:.2f} simulated-s, "
              f"regions c/d {stats['cohort_regions']:.0f}/"
              f"{stats['des_regions']:.0f}, "
              f"closed {stats['closed_form_regions']:.0f}, "
              f"queue-solved {stats['queue_solver_regions']:.0f}")
    if cells:
        print(f"\n{len(cells)} cells (artifact: "
              f"{os.path.join(runs_root(), run_id, 'cells.jsonl')}):")
        for cell, kind, seconds in cells[:20]:
            sec = "-" if seconds is None else f"{seconds:.4g}"
            print(f"  {cell:<58} {kind or '-':<13} {sec:>10}")
        if len(cells) > 20:
            print(f"  ... {len(cells) - 20} more "
                  f"(use `repro runs query`)")
    return 0


def cmd_diff(prefix_a: str, prefix_b: str) -> int:
    _ensure_indexed()
    conn = connect()
    try:
        try:
            run_a = resolve_run(conn, prefix_a)
            run_b = resolve_run(conn, prefix_b)
        except KeyError as exc:
            print(f"runs diff: {exc.args[0]}", file=sys.stderr)
            return 2
        diff = diff_runs(conn, run_a, run_b)
    finally:
        conn.close()
    print(f"diff {run_a} -> {run_b}: {diff['common']} common rows, "
          f"{len(diff['changed'])} changed, "
          f"{len(diff['only_a'])} removed, {len(diff['only_b'])} added")
    for (eid, label), sim_a, sim_b in diff["changed"]:
        if sim_a not in (None, 0):
            delta = f"{(sim_b / sim_a - 1.0) * 100.0:+.2f}%"
        else:
            delta = "n/a"
        print(f"  {eid} / {label}: {sim_a!r} -> {sim_b!r} ({delta})")
    # one-sided rows dominate when comparing runs of different
    # commands (an `all` run vs a `bench` run); cap the listing
    cap = 20
    for side, word in (("only_a", "removed"), ("only_b", "added")):
        rows = diff[side]
        for eid, label in rows[:cap]:
            print(f"  {word}: {eid} / {label}")
        if len(rows) > cap:
            print(f"  ... and {len(rows) - cap} more {word}")
    identical = not (diff["changed"] or diff["only_a"]
                     or diff["only_b"])
    return 0 if identical else 1


def cmd_query(cell: Optional[str], since: Optional[str],
              limit: Optional[int], json_out: bool) -> int:
    _ensure_indexed()
    conn = connect()
    try:
        records = query_cells(conn, cell=cell, since=since, limit=limit)
    finally:
        conn.close()
    if json_out:
        print(json.dumps({"schema": INDEX_SCHEMA, "cell": cell,
                          "since": since, "records": records},
                         indent=2, sort_keys=True))
        return 0
    if not records:
        print("no matching cells (check `repro runs list` and the "
              "cell id, or `repro runs reindex`)")
        return 0
    print(f"{'run_id':<34} {'started':<20} {'rev':<9} "
          f"{'cell':<44} {'seconds':>11}")
    print("-" * 122)
    for r in records:
        rev = (r["git_rev"] or "-")[:8]
        sec = "-" if r["seconds"] is None else f"{r['seconds']:.5g}"
        print(f"{r['run_id']:<34} {r['started'] or '-':<20} "
              f"{rev:<9} {r['cell']:<44} {sec:>11}")
    return 0


def cmd_reindex() -> int:
    n_runs, n_cells = reindex()
    print(f"reindexed {n_runs} runs ({n_cells} cell rows) from "
          f"{os.path.abspath(runs_root())} into {db_path()}")
    return 0
