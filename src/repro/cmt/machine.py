"""CMT machine model: the conventional DES/cohort engine on a CmtSpec."""

from __future__ import annotations

from repro.cmt.spec import SPARC_T3_4, CmtSpec
from repro.machines.machine import ConventionalMachine
from repro.machines.spec import MachineSpec


class CmtMachine(ConventionalMachine):
    """The T3-4 model.

    A thin veneer over :class:`ConventionalMachine`: the barrel
    pipeline, strand pool and crossbar are all encoded in the derived
    spec (see :mod:`repro.cmt.spec`), so both engines and the cohort
    compiler run unchanged -- which is what keeps DES-vs-cohort byte
    parity for free on this family.
    """

    def __init__(self, spec: CmtSpec | MachineSpec | None = None,
                 slices_per_phase: int = 16,
                 exploit_fine_grained: bool = False,
                 use_cohort: bool | None = None):
        if spec is None:
            spec = SPARC_T3_4
        if isinstance(spec, CmtSpec):
            spec = spec.machine_spec()
        super().__init__(spec, slices_per_phase=slices_per_phase,
                         exploit_fine_grained=exploit_fine_grained,
                         use_cohort=use_cohort)
