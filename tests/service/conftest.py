"""Service-test fixtures: isolated cache + an in-process server.

No pytest-asyncio in the dependency set: tests are plain sync
functions that drive their own event loop with ``asyncio.run`` (each
wrapped in a generous ``wait_for`` so a deadlocked server fails the
test instead of hanging the suite).
"""

import asyncio
import contextlib

import pytest

from repro.service.server import ReproService

#: tiny kernel scales -- cells cost milliseconds, not seconds
SCALES = dict(threat_scale=0.01, terrain_scale=0.02)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "svc-cache"))
    # drop the process-wide BenchmarkData memos: a `sim-<key>` memo
    # from an earlier test would satisfy _simulate without writing
    # this test's fresh cache, making dedupe counters untestable
    from repro.harness.runner import default_data

    default_data.cache_clear()


@contextlib.asynccontextmanager
async def serve_ctx(**kwargs):
    """Boot a service on an ephemeral port; drain it on exit."""
    kwargs.setdefault("threat_scale", SCALES["threat_scale"])
    kwargs.setdefault("terrain_scale", SCALES["terrain_scale"])
    kwargs.setdefault("batch_window", 0.02)
    service = ReproService(**kwargs)
    await service.start()
    try:
        yield service
    finally:
        service.request_shutdown("test teardown")
        await service.serve_until_shutdown()


def run_async(coro, timeout=120.0):
    """Drive one async test body with a hang guard."""
    return asyncio.run(asyncio.wait_for(coro, timeout))
