"""Closed-form vs event-stepped work-queue regions.

The fourth closed-form layer (the work-queue solver) folds every
uncontended server's jobs into fixed-duration spans and computes the
pull-from-queue completion frontier arithmetically, event-stepping
only the (at most one) contended server.  Like the other layers it is
an arithmetic shortcut, not a model change: for any bus-coupled
work-queue region the engine accepts, the solver must reproduce the
event-stepped timeline -- completion order, completion times,
lock-wait statistics, server busy/served accounting -- to 1e-12
relative.

Random region shapes (CPU lane uncontended by machine-geometry
construction, bus drawn contended or not, lock-protected bus sections,
pop-synchronization costs) drive both configurations of the same
:class:`CohortEngine` and compare everything the machine models
consume.  Demands are drawn on a coarse 1/8 grid so distinct values
differ by far more than the engines' 1e-9 exactness envelope.
"""

import os
from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

import repro.des.batch as batch
from repro.des.batch import (
    ACQ,
    REL,
    SLEEP,
    SRV,
    CohortEngine,
    FORCE_CLOSED_FORM_ENV,
    span_union_length,
)

RTOL = 1e-12


def close(a: float, b: float) -> bool:
    return abs(a - b) <= RTOL * max(abs(a), abs(b), 1e-12)


# ----------------------------------------------------------------------
# random work-queue regions
# ----------------------------------------------------------------------

@st.composite
def queue_cases(draw):
    """A bus-coupled work-queue region.

    Server 0 is the CPU lane: uniform per-thread cap with capacity
    ``cap * k`` -- the exact geometry of ``n_cpus x clock`` machines,
    uncontended for any worker count.  Server 1 is the bus: drawn
    either uncontended (``capacity >= k * cap``, the whole region goes
    closed-form) or contended (the solver event-steps the bus and
    folds only the CPU).  Queue items come from a small template pool
    (real regions are homogeneous-ish), optionally with a
    lock-protected bus section and a sleep.
    """
    k = draw(st.integers(min_value=1, max_value=4))
    cap_cpu = draw(st.sampled_from([2.0, 4.0, 8.0]))
    cap_bus = draw(st.sampled_from([1.0, 3.0, 5.0]))
    contended = draw(st.booleans()) and k >= 2
    if contended:
        capacity_bus = cap_bus * draw(
            st.integers(min_value=1, max_value=k - 1))
    else:
        capacity_bus = cap_bus * (k + draw(
            st.integers(min_value=0, max_value=2)))

    def q8() -> float:
        return draw(st.integers(min_value=1, max_value=64)) / 8.0

    n_templates = draw(st.integers(min_value=1, max_value=3))
    templates = []
    for _ in range(n_templates):
        item = [(SRV, 0, q8(), cap_cpu)]
        if draw(st.booleans()):
            item.append((SRV, 1, q8(), cap_bus))
        if draw(st.booleans()):
            name = draw(st.sampled_from(["L", "M"]))
            item.append((ACQ, name))
            item.append((SRV, 1, q8(), cap_bus))
            item.append((REL, name))
        if draw(st.booleans()):
            item.append((SLEEP, q8()))
        templates.append(item)
    m = draw(st.integers(min_value=1, max_value=10))
    items = [list(templates[draw(st.integers(0, n_templates - 1))])
             for _ in range(m)]
    # per-worker pop/bootstrap cost on the CPU lane
    programs = [[(SRV, 0, q8(), cap_cpu)] for _ in range(k)]
    return programs, items, [cap_cpu * k, capacity_bus]


def run_queue_engine(programs, items, capacities, closed_form):
    eng = CohortEngine(0.0, capacities,
                       [list(p) for p in programs],
                       own_sids=[0] * len(programs),
                       queue=deque(list(i) for i in items),
                       closed_form=closed_form)
    end = eng.run()
    return eng, end


def assert_queue_engines_agree(programs, items, capacities):
    fast, end_f = run_queue_engine(programs, items, capacities,
                                   closed_form=True)
    slow, end_s = run_queue_engine(programs, items, capacities,
                                   closed_form=False)
    assert close(end_f, end_s), (end_f, end_s)
    assert len(fast.done_times) == len(slow.done_times)
    for tf, ts in zip(fast.done_times, slow.done_times):
        assert close(tf, ts), (tf, ts)
    # accumulated quantities (busy/served/wait) are sums of dt values
    # the event-stepped engine rounds at the absolute-time magnitude,
    # so their float error scales with the timeline, not with the sum
    scale = max(abs(end_s), 1.0)
    assert fast.locks.keys() == slow.locks.keys()
    for name, lf in fast.locks.items():
        ls = slow.locks[name]
        assert lf.waits == ls.waits
        assert lf.max_depth == ls.max_depth
        assert lf.hist == ls.hist
        assert abs(lf.wait_time - ls.wait_time) \
            <= RTOL * max(abs(ls.wait_time), scale)
    for sf, ss in zip(fast.servers, slow.servers):
        assert abs(sf.busy_time - ss.busy_time) \
            <= RTOL * max(abs(ss.busy_time), scale)
        assert abs(sf.total_served - ss.total_served) \
            <= RTOL * max(abs(ss.total_served), scale)
    return fast, slow


@settings(max_examples=60, deadline=None)
@given(queue_cases())
def test_queue_solver_matches_event_stepped_scalar(case):
    programs, items, capacities = case
    assert_queue_engines_agree(programs, items, capacities)


@settings(max_examples=40, deadline=None)
@given(queue_cases())
def test_queue_solver_matches_event_stepped_vector(case):
    # force every server onto the numpy BatchServer
    programs, items, capacities = case
    saved = batch.SCALAR_MAX_SLOTS
    batch.SCALAR_MAX_SLOTS = 0
    try:
        assert_queue_engines_agree(programs, items, capacities)
    finally:
        batch.SCALAR_MAX_SLOTS = saved


# ----------------------------------------------------------------------
# dispatch accounting
# ----------------------------------------------------------------------

POP = [(SRV, 0, 1.0, 4.0)]


def items_of(n, segs):
    return [list(segs) for _ in range(n)]


def test_contended_bus_uses_queue_solver():
    # bus capacity 4 < 3 workers x cap 2: the bus stays event-stepped,
    # the CPU lane folds
    item = [(SRV, 0, 2.0, 4.0), (SRV, 1, 2.0, 2.0)]
    fast, _ = run_queue_engine([list(POP)] * 3, items_of(8, item),
                               [12.0, 4.0], closed_form=True)
    assert fast.stats["queue_solver"] == 1
    assert fast.stats["closed_form"] == 0
    assert fast.stats["events"] > 0
    assert_queue_engines_agree([list(POP)] * 3, items_of(8, item),
                               [12.0, 4.0])


def test_fully_uncontended_region_goes_closed_form():
    # bus capacity 8 >= 3 workers x cap 2: both servers fold, no
    # server events at all
    item = [(SRV, 0, 2.0, 4.0), (SRV, 1, 2.0, 2.0)]
    fast, _ = run_queue_engine([list(POP)] * 3, items_of(8, item),
                               [12.0, 8.0], closed_form=True)
    assert fast.stats["queue_solver"] == 1
    assert fast.stats["closed_form"] == 1
    assert_queue_engines_agree([list(POP)] * 3, items_of(8, item),
                               [12.0, 8.0])


def test_two_contended_servers_fall_back_to_stepping():
    # both servers over-committed: no closed-form frontier exists and
    # the solver must decline (byte-identity comes from the shared
    # event-stepped path, so agreement still holds)
    item = [(SRV, 0, 2.0, 8.0), (SRV, 1, 2.0, 2.0)]
    fast, _ = run_queue_engine([list(POP)] * 3, items_of(6, item),
                               [8.0, 4.0], closed_form=True)
    assert fast.stats["queue_solver"] == 0
    assert_queue_engines_agree([list(POP)] * 3, items_of(6, item),
                               [8.0, 4.0])


def test_queue_solver_honours_force_closed_form_gate(monkeypatch):
    item = [(SRV, 0, 2.0, 4.0), (SRV, 1, 2.0, 2.0)]
    monkeypatch.setenv(FORCE_CLOSED_FORM_ENV, "0")
    eng, _ = run_queue_engine([list(POP)] * 3, items_of(4, item),
                              [12.0, 8.0], closed_form=None)
    assert eng.stats["queue_solver"] == 0
    assert eng.stats["closed_form"] == 0


def test_queue_wait_statistics_cross_engine():
    """Lock queue-wait statistics (waits, wait_time, depth histogram)
    must agree exactly when every grant order is forced, and to RTOL
    on accumulated time."""
    item = [(SRV, 0, 1.0, 4.0), (ACQ, "L"), (SRV, 1, 3.0, 2.0),
            (REL, "L")]
    fast, slow = assert_queue_engines_agree(
        [list(POP)] * 3, items_of(9, item), [12.0, 8.0])
    lf = fast.locks["L"]
    assert lf.waits > 0          # the case actually contends the lock
    assert lf.wait_time > 0.0


def test_span_union_length():
    assert span_union_length([]) == 0.0
    assert span_union_length([(0.0, 2.0)]) == 2.0
    # overlapping + disjoint + contained spans
    spans = [(0.0, 2.0), (1.0, 3.0), (5.0, 6.0), (5.25, 5.5)]
    assert span_union_length(spans) == pytest.approx(4.0, abs=1e-15)


def test_closed_form_default_is_on():
    assert os.environ.get(FORCE_CLOSED_FORM_ENV, "") != "0"
