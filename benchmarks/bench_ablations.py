"""Ablation studies: remove one mechanism at a time and check the
result moves the way the paper's analysis predicts.

* fine-grained inner-loop parallelism on a conventional SMP (the
  thread-cost disaster the paper predicts);
* the prototype network exponent behind the sub-ideal 1.4x/1.8x
  two-processor speedups;
* issue interval vs unhidden memory latency behind the MTA's
  sequential crawl;
* cache size behind the SMPs' near-ideal Threat Analysis scaling.
"""

import pytest

pytestmark = pytest.mark.slow  # cycle-accurate / full-sweep benches

from _support import run_and_report


def bench_ablation_finegrained_smp(benchmark, data):
    run_and_report(benchmark, data, "ablation-finegrained-smp")


def bench_ablation_network(benchmark, data):
    run_and_report(benchmark, data, "ablation-network")


def bench_ablation_issue(benchmark, data):
    run_and_report(benchmark, data, "ablation-issue")


def bench_ablation_cache(benchmark, data):
    run_and_report(benchmark, data, "ablation-cache")


def bench_threat_alternative(benchmark, data):
    run_and_report(benchmark, data, "threat-alternative")


def bench_sensitivity(benchmark, data):
    result = run_and_report(benchmark, data, "sensitivity")
    from repro.harness.sensitivity import render_sensitivity, run_sensitivity
    print()
    print(render_sensitivity(run_sensitivity(data)))


def bench_ablation_temp_memory(benchmark, data):
    run_and_report(benchmark, data, "ablation-temp-memory")


def bench_seed_robustness(benchmark, data):
    run_and_report(benchmark, data, "seed-robustness")
