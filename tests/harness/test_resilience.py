"""Harness-level fault tolerance: worker crashes, traceback
propagation, cache-corruption detection, run watchdog."""

import json
import os

import pytest

from repro.harness import store
from repro.harness.parallel import (
    CHAOS_CRASH_ENV,
    RETRY_BACKOFF_ENV,
    RETRY_MAX_ENV,
    WorkerError,
    _maybe_crash,
    run_experiments,
)
from repro.faults.plan import derive_unit

SCALES = dict(threat_scale=0.01, terrain_scale=0.03)
#: cheap experiments (no simulated jobs / one tiny job each)
CHEAP = ["autopar", "ablation-temp-memory", "micro"]


def crash_env(eids_to_crash, mode="exit", attempts=(0,), seed_limit=5000):
    """Find a seed that crashes exactly the given (eid, attempt)
    pairs among CHEAP experiments -- deterministic by construction."""
    want = {(e, a) for e in eids_to_crash for a in attempts}
    for seed in range(seed_limit):
        hits = {(e, a) for e in CHEAP for a in (0, 1, 2)
                if derive_unit(seed, e, a, "worker-crash") < 0.5}
        if hits == want:
            return f"{seed}:0.5:{mode}"
    raise AssertionError("no suitable crash seed found")


# ----------------------------------------------------------------------
# worker traceback propagation (the old behaviour swallowed it)
# ----------------------------------------------------------------------

def test_worker_error_carries_child_traceback(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    monkeypatch.setenv(CHAOS_CRASH_ENV, "1:1.1:raise")  # always raise
    monkeypatch.setenv(RETRY_MAX_ENV, "1")
    with pytest.raises(WorkerError) as excinfo:
        run_experiments(["autopar", "micro"], jobs=2, **SCALES)
    err = excinfo.value
    assert err.experiment_id in ("autopar", "micro")
    assert "injected worker fault" in err.child_traceback
    assert "Traceback (most recent call last)" in err.child_traceback
    # the child traceback is part of the rendered message
    assert "worker traceback" in str(err)


def test_worker_error_survives_pickling():
    import pickle

    err = WorkerError("table5", "Traceback ...")
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, WorkerError)
    assert clone.experiment_id == "table5"
    assert clone.child_traceback == "Traceback ..."


# ----------------------------------------------------------------------
# crash injection + retry + salvage
# ----------------------------------------------------------------------

def test_crash_config_validation(monkeypatch):
    monkeypatch.setenv(CHAOS_CRASH_ENV, "7")
    with pytest.raises(ValueError):
        _maybe_crash("x", 0)
    monkeypatch.setenv(CHAOS_CRASH_ENV, "7:0.5:explode")
    with pytest.raises(ValueError):
        _maybe_crash("x", 0)
    monkeypatch.delenv(CHAOS_CRASH_ENV)
    _maybe_crash("x", 0)  # no config: no-op


def test_crashed_worker_retried_and_salvaged(monkeypatch, tmp_path):
    """One experiment's worker dies on attempt 0; the pool is rebuilt,
    completed results are salvaged, and the retry succeeds."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    monkeypatch.setenv(CHAOS_CRASH_ENV,
                       crash_env(["autopar"], mode="exit"))
    monkeypatch.setenv(RETRY_BACKOFF_ENV, "0.01")
    results, profiles = run_experiments(CHEAP, jobs=2, **SCALES)
    assert sorted(results) == sorted(CHEAP)
    for eid in CHEAP:
        assert results[eid].all_checks_pass(), eid
    assert [p.experiment_id for p in profiles] == CHEAP


def test_crash_every_attempt_exhausts_retries(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    monkeypatch.setenv(CHAOS_CRASH_ENV, "3:1.1:exit")  # always crash
    monkeypatch.setenv(RETRY_MAX_ENV, "2")
    monkeypatch.setenv(RETRY_BACKOFF_ENV, "0.01")
    with pytest.raises(WorkerError) as excinfo:
        run_experiments(["autopar", "micro"], jobs=2, **SCALES)
    assert "worker process died" in str(excinfo.value)
    assert "2 attempts" in str(excinfo.value)


def test_cell_units_crash_only_with_cells_flag(monkeypatch):
    """Simulation-cell fault units are opt-in (``+cells`` mode suffix)
    so experiment-level chaos seeds stay deterministic regardless of
    how many cells an experiment fans out into."""
    monkeypatch.setenv(CHAOS_CRASH_ENV, "1:1.1:raise")
    with pytest.raises(RuntimeError):
        _maybe_crash("table2", 0)
    _maybe_crash("cell:th-job-seq@0", 0)     # gated off: no-op
    monkeypatch.setenv(CHAOS_CRASH_ENV, "1:1.1:raise+cells")
    with pytest.raises(RuntimeError):
        _maybe_crash("cell:th-job-seq@0", 0)


def test_crashed_cell_retried_and_salvaged(monkeypatch, tmp_path):
    """Cell-granular salvage: every cell of table2 shares the fault
    unit ``cell:th-job-seq@0``; a seed that faults that unit on
    attempt 0 kills each cell's first worker, and every one of them
    must be isolated, retried and folded back into a passing run.

    Runs at scales no other test uses: forked workers inherit the
    parent's process-wide in-process memo, and warm memos would let
    the cells answer without ever touching the (empty) persistent
    cache -- this test needs genuinely cold cells."""
    from repro.faults.plan import derive_unit as d

    unit = "cell:th-job-seq@0"
    for seed in range(5000):
        hits = {(u, a) for u in (unit, "table2") for a in (0, 1, 2)
                if d(seed, u, a, "worker-crash") < 0.5}
        if hits == {(unit, 0)}:
            break
    else:
        raise AssertionError("no suitable crash seed found")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    monkeypatch.setenv(CHAOS_CRASH_ENV, f"{seed}:0.5:exit+cells")
    monkeypatch.setenv(RETRY_BACKOFF_ENV, "0.01")
    results, profiles = run_experiments(
        ["table2"], jobs=2, threat_scale=0.012, terrain_scale=0.03)
    assert results["table2"].all_checks_pass()
    (profile,) = profiles
    # the cells were computed (and charged) despite the crashes
    assert profile.cache_misses > 0


def test_cell_crash_every_attempt_exhausts_retries(monkeypatch,
                                                   tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    monkeypatch.setenv(CHAOS_CRASH_ENV, "3:1.1:exit+cells")
    monkeypatch.setenv(RETRY_MAX_ENV, "2")
    monkeypatch.setenv(RETRY_BACKOFF_ENV, "0.01")
    with pytest.raises(WorkerError) as excinfo:
        run_experiments(["table2"], jobs=2, **SCALES)
    assert "worker process died" in str(excinfo.value)
    assert "2 attempts" in str(excinfo.value)


def test_serial_path_ignores_crash_injection(monkeypatch, tmp_path):
    """jobs=1 runs in-process; crash faults target workers only."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    monkeypatch.setenv(CHAOS_CRASH_ENV, "3:1.1:exit")
    results, _ = run_experiments(["autopar"], jobs=1, **SCALES)
    assert results["autopar"].all_checks_pass()


# ----------------------------------------------------------------------
# cache corruption detection
# ----------------------------------------------------------------------

def test_cache_checksum_roundtrip(tmp_path):
    cache = store.ResultCache(str(tmp_path))
    cache.put("k" * 8, {"seconds": 1.5, "machine": "m", "job": "j"})
    entry = cache.get("k" * 8)
    assert entry is not None and entry["seconds"] == 1.5
    assert entry["sha256"] == cache.payload_checksum(entry)
    assert cache.corrupt == 0


def test_cache_detects_silent_corruption(tmp_path):
    """A bit flip that keeps the JSON valid -- the pre-checksum reader
    would happily serve the wrong seconds."""
    cache = store.ResultCache(str(tmp_path))
    key = "a" * 8
    cache.put(key, {"seconds": 1.5, "machine": "m", "job": "j"})
    path = cache._path(key)
    payload = json.loads(open(path).read())
    payload["seconds"] = 99.0  # corrupted result, checksum stale
    with open(path, "w") as fh:
        json.dump(payload, fh)

    assert cache.get(key) is None          # detected, not served
    assert cache.corrupt == 1
    assert not os.path.exists(path)        # discarded for recompute
    assert cache.info()["corrupt_discarded"] == 1


def test_cache_rejects_legacy_unchecksummed_entries(tmp_path):
    cache = store.ResultCache(str(tmp_path))
    key = "b" * 8
    with open(cache._path(key), "w") as fh:
        json.dump({"schema": store.CACHE_SCHEMA_VERSION,
                   "seconds": 2.0, "key": key}, fh)
    assert cache.get(key) is None
    assert cache.corrupt == 1


def test_corrupt_entry_transparently_recomputed(tmp_path, monkeypatch):
    """End to end: corrupt a simulation entry on disk, re-run the
    experiment, get the correct (recomputed) result."""
    from repro.harness import BenchmarkData, run_experiment

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    data = BenchmarkData(**SCALES)
    before = run_experiment("table2", data)

    cache = store.active_cache()
    for path in cache._entries():
        payload = json.loads(open(path).read())
        payload["seconds"] = payload["seconds"] * 10
        with open(path, "w") as fh:
            json.dump(payload, fh)

    fresh = BenchmarkData(**SCALES)
    after = run_experiment("table2", fresh)
    assert [r.simulated for r in after.rows] == \
        [r.simulated for r in before.rows]
    assert cache.corrupt > 0
