"""Table 4 / Figure 2: multithreaded Threat Analysis on the 16-CPU
Exemplar (scales to 15.4x in the paper)."""

import pytest

pytestmark = pytest.mark.slow  # cycle-accurate / full-sweep benches

from _support import run_and_report

from repro.harness import render_speedup_figure
from repro.harness.calibration import PAPER_TABLE4


def bench_table4_fig2(benchmark, data):
    result = run_and_report(benchmark, data, "table4")
    procs = list(range(1, 17))
    base = result.row("1 processors").simulated
    speedups = [base / result.row(f"{n} processors").simulated
                for n in procs]
    paper = [PAPER_TABLE4[1] / PAPER_TABLE4[n] for n in procs]
    print()
    print(render_speedup_figure(
        "Figure 2: Threat Analysis speedup on 16-CPU Exemplar",
        procs, speedups, paper))
