"""Tests for BenchmarkData caching and helpers."""

import pytest

from repro.harness import BenchmarkData
from repro.machines import exemplar


@pytest.fixture(scope="module")
def data():
    return BenchmarkData(threat_scale=0.01, terrain_scale=0.025)


def test_scenarios_are_memoized(data):
    assert data.threat_scenarios is data.threat_scenarios
    assert data.terrain_scenarios is data.terrain_scenarios
    assert data.threat_sequential is data.threat_sequential


def test_jobs_are_memoized(data):
    assert data.threat_chunked_job(16) is data.threat_chunked_job(16)
    assert data.threat_chunked_job(16) is not data.threat_chunked_job(32)
    assert (data.threat_chunked_job(16, thread_kind="hw")
            is not data.threat_chunked_job(16, thread_kind="os"))


def test_runs_are_memoized(data):
    job = data.threat_sequential_job()
    a = data.exemplar(1, job)
    b = data.exemplar(1, job)
    assert a == b
    assert data.run_conventional(exemplar(1), job) == a


def test_run_shorthands_agree(data):
    job = data.threat_sequential_job()
    assert data.exemplar(4, job) == data.run_conventional(exemplar(4),
                                                          job)


def test_mta_runs_distinct_by_processors(data):
    job = data.threat_chunked_job(64, thread_kind="hw")
    t1 = data.run_mta(1, job)
    t2 = data.run_mta(2, job)
    assert t1 != t2


def test_seed_offset_produces_different_data():
    a = BenchmarkData(threat_scale=0.01, seed_offset=0)
    b = BenchmarkData(threat_scale=0.01, seed_offset=1)
    assert a.threat_scenarios[0].threats != b.threat_scenarios[0].threats
