"""Shared plumbing for the C3I benchmark implementations."""

from __future__ import annotations

import numpy as np

#: Base seed; scenario ``k`` of benchmark ``b`` uses ``SEED0 + 100*b + k``
#: so every scenario is deterministic and distinct.
SEED0 = 19980701  # the year of the paper

THREAT_ANALYSIS = 1
TERRAIN_MASKING = 2


def scenario_rng(benchmark: int, scenario: int,
                 seed_offset: int = 0) -> np.random.Generator:
    """The deterministic RNG for one benchmark scenario.

    ``seed_offset`` selects an alternative (equally deterministic)
    universe of synthetic inputs -- used by the seed-robustness study
    to show the reproduced shapes do not depend on one lucky draw.
    """
    if scenario < 0:
        raise ValueError("scenario index must be >= 0")
    return np.random.default_rng(
        SEED0 + 1_000_000 * seed_offset + 100 * benchmark + scenario)


def contiguous_runs(mask: np.ndarray) -> list[tuple[int, int]]:
    """Maximal runs of True in a boolean vector, as (first, last) index
    pairs (inclusive)."""
    if mask.ndim != 1:
        raise ValueError("mask must be one-dimensional")
    if mask.size == 0 or not mask.any():
        return []
    m = mask.astype(np.int8)
    diff = np.diff(m)
    starts = list(np.flatnonzero(diff == 1) + 1)
    ends = list(np.flatnonzero(diff == -1))
    if m[0]:
        starts.insert(0, 0)
    if m[-1]:
        ends.append(mask.size - 1)
    return list(zip(starts, ends))
