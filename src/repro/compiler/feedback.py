"""Canal-style compiler feedback.

The Tera toolchain's ``canal`` utility annotated each source loop with
what the compiler did and why.  :func:`render_feedback` produces the
same kind of report from an :class:`~repro.compiler.autopar.AutoParResult`.
"""

from __future__ import annotations

from repro.compiler.autopar import AutoParResult


def render_feedback(result: AutoParResult) -> str:
    """A human-readable per-loop parallelization report."""
    lines = [
        f"Compiler feedback for {result.program.name}",
        "=" * (22 + len(result.program.name)),
    ]
    if result.program.source_note:
        lines.append(f"({result.program.source_note})")
    lines.append("")
    if not result.reports:
        lines.append("no loops found")
    for r in result.reports:
        indent = "  " * r.depth
        header = f"{indent}{r.label}:"
        if r.parallelized and r.by_pragma:
            lines.append(f"{header} PARALLELIZED (explicit pragma; "
                         f"independence asserted by the programmer)")
        elif r.parallelized:
            lines.append(f"{header} PARALLELIZED (no dependences found)")
        else:
            lines.append(f"{header} NOT parallelized")
            for reason in r.reasons:
                lines.append(f"{indent}    - {reason}")
    lines.append("")
    if result.n_auto_parallelized == 0 and result.n_parallelized == 0:
        lines.append(
            "summary: no practical opportunities for parallelization "
            "were identified")
    else:
        lines.append(
            f"summary: {result.n_parallelized}/{result.n_loops} loops "
            f"parallelized ({result.n_auto_parallelized} automatically)")
    return "\n".join(lines)
