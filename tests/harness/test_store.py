"""Tests for JSON serialization of experiment results."""

import json

import pytest

from repro.harness.experiment import ExperimentResult, Row, ShapeCheck
from repro.harness.store import (
    SCHEMA_VERSION,
    dump_results,
    load_results,
    result_from_dict,
    result_to_dict,
)


def sample_result():
    return ExperimentResult(
        "tableX", "Some Table",
        rows=(Row("a", 1.0, 1.1), Row("b", None, 2.0, unit="x")),
        checks=(ShapeCheck("holds", True, "detail"),
                ShapeCheck("breaks", False)),
        notes="a note")


def test_round_trip_via_dict():
    original = sample_result()
    restored = result_from_dict(result_to_dict(original))
    assert restored == original


def test_round_trip_via_file(tmp_path):
    path = str(tmp_path / "results.json")
    a, b = sample_result(), ExperimentResult("t2", "T2", (Row("r", 1, 1),))
    dump_results([a, b], path)
    loaded = load_results(path)
    assert loaded == [a, b]
    # and it is real JSON
    with open(path) as fh:
        payload = json.load(fh)
    assert payload[0]["schema"] == SCHEMA_VERSION


def test_schema_version_checked():
    payload = result_to_dict(sample_result())
    payload["schema"] = 999
    with pytest.raises(ValueError, match="schema"):
        result_from_dict(payload)


def test_load_rejects_non_array(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"not": "an array"}')
    with pytest.raises(ValueError, match="array"):
        load_results(str(path))


def test_dump_is_atomic_on_serialization_failure(tmp_path):
    """Regression: ``dump_results`` used to ``open(path, "w")``
    directly, so a mid-write failure (unserializable payload, watchdog
    interrupt) truncated a good file in place.  The tempfile +
    ``os.replace`` path must leave the destination untouched."""
    from repro.harness.store import atomic_write_json

    path = tmp_path / "out.json"
    atomic_write_json(str(path), {"good": 1})
    with pytest.raises(TypeError):
        atomic_write_json(str(path), {"bad": object()})
    # the previous contents survive intact ...
    with open(path) as fh:
        assert json.load(fh) == {"good": 1}
    # ... and no temp litter is left behind
    assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


def test_atomic_write_to_fresh_path_never_exposes_partial(tmp_path):
    from repro.harness.store import atomic_write_json

    path = tmp_path / "fresh.json"
    with pytest.raises(TypeError):
        atomic_write_json(str(path), {"bad": {1, 2}})
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []


def test_cli_json_output(tmp_path):
    from repro.__main__ import main
    out = str(tmp_path / "out.json")
    code = main(["--threat-scale", "0.01", "--terrain-scale", "0.03",
                 "run", "autopar", "--json", out])
    assert code == 0
    loaded = load_results(out)
    assert len(loaded) == 1
    assert loaded[0].experiment_id == "autopar"
    assert loaded[0].all_checks_pass()
