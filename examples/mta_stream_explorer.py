#!/usr/bin/env python3
"""Explore the Tera MTA's multithreading at cycle level (Section 7).

* sweeps hardware-stream counts on the cycle-accurate simulator for
  three kernel types and shows the processor-utilization curves (the
  "one instruction per 21 cycles" and "~80 streams for full
  utilization" claims);
* demonstrates the programming system: futures and full/empty
  synchronization variables at their 2 / 75 / 1-cycle costs.

    python examples/mta_stream_explorer.py
"""

from repro.mta import (
    MtaSpec,
    MtaSystem,
    TeraRuntime,
    alu_kernel,
    dependent_load_kernel,
)
from repro.mta.system import load_use_kernel
from repro.threads.costs import render_cost_table


def utilization_curves() -> None:
    print("=" * 72)
    print("Processor utilization vs hardware streams (cycle-accurate)")
    print("=" * 72)
    kernels = {
        "pure ALU": lambda base: alu_kernel(40),
        "load-use (typical loop)": lambda base: load_use_kernel(
            20, base=base),
        "pointer chase": lambda base: dependent_load_kernel(
            15, base=base),
    }
    counts = (1, 2, 4, 8, 16, 32, 64, 96, 128)
    print(f"{'streams':>8}" + "".join(f"{k:>26}" for k in kernels))
    for n in counts:
        row = [f"{n:>8}"]
        for name, make in kernels.items():
            sys = MtaSystem(MtaSpec(n_processors=1, lookahead=2,
                                    mem_latency_cycles=120.0))
            for s in range(n):
                sys.add_stream(make(s * 65_536))
            util = sys.run().utilization
            bar = "#" * int(util * 16)
            row.append(f"{util:>8.2f} {bar:<16}")
        print(" ".join(row))
    print()
    print("one stream sits at 1/21 = 0.048; ALU code saturates at ~21")
    print("streams; memory-bound code needs several times more -- the")
    print("paper's 'hundreds of threads' requirement.")


def programming_system_demo() -> None:
    print()
    print("=" * 72)
    print("Futures and synchronization variables (the Tera runtime)")
    print("=" * 72)
    rt = TeraRuntime()
    pipe = rt.sync_variable(name="pipe$")

    def producer(rt, pipe, n):
        for i in range(n):
            yield rt.cycles(50)          # compute the next item
            yield pipe.write(i * i)      # 1-cycle full/empty write
        yield pipe.write(None)           # poison pill

    def consumer(rt, pipe):
        total = 0
        while True:
            v = yield pipe.read()        # blocks until full
            if v is None:
                return total
            total += v

    rt.future(producer, pipe, 10)
    consumer_f = rt.future(consumer, pipe)
    elapsed = rt.run()
    print(f"producer/consumer through one full/empty word: "
          f"sum = {consumer_f.value()}, {elapsed:.0f} cycles total")

    rt2 = TeraRuntime()

    def fib(rt, n):
        if n < 2:
            yield rt.cycles(1)
            return n
        a = rt.future(fib, n - 1)
        b = rt.future(fib, n - 2)
        ra = yield a.get()
        rb = yield b.get()
        return ra + rb

    f = rt2.future(fib, 10)
    cycles = rt2.run()
    print(f"future-recursive fib(10) = {f.value()} in {cycles:.0f} "
          f"cycles (~177 futures at 75 cycles each, overlapped)")

    print()
    print(render_cost_table())


def idioms_demo() -> None:
    print()
    print("=" * 72)
    print("Full/empty idioms: atomic counters, bounded buffers, "
          "reductions")
    print("=" * 72)
    from repro.mta import AtomicCounter, BoundedBuffer, ReductionTree

    rt = TeraRuntime()
    counter = AtomicCounter(rt)
    buf = BoundedBuffer(rt, capacity=8)

    def producer(rt, base):
        for i in range(20):
            yield from buf.put(base + i)
            yield from counter.add(1)

    def consumer(rt, total):
        s = 0
        for _ in range(total):
            item = yield from buf.get()
            s += item
        return s

    for p in range(3):
        rt.future(producer, p * 1000)
    c = rt.future(consumer, 60)
    cycles = rt.run()
    print(f"3 producers -> capacity-8 buffer -> 1 consumer: "
          f"{counter.value()} items, sum {c.value()}, "
          f"{cycles:.0f} cycles")

    rt2 = TeraRuntime()
    tree = ReductionTree(rt2, combine_cycles=25.0)

    def reducer(rt):
        total = yield from tree.reduce(list(range(256)),
                                       lambda a, b: a + b)
        return total

    f = rt2.future(reducer)
    cycles = rt2.run()
    print(f"tree-reduce of 256 values: {f.value()} in {cycles:.0f} "
          f"cycles (8 combine rounds, pairwise-parallel)")


if __name__ == "__main__":
    utilization_curves()
    programming_system_demo()
    idioms_demo()
