"""Durable per-run artifact directories (``.repro_runs/<run_id>/``).

Every ``repro all`` / ``report`` / ``bench`` / ``chaos`` invocation
used to print its numbers and throw them away; tracking the harness's
perf trajectory meant hand-editing ``BENCH_harness.json``.  This layer
makes each run a durable artifact instead:

``manifest.json``
    Written when the run starts (status ``running``) and atomically
    finalized when it ends: command, flags, git rev, model epoch,
    machine/workload ids, seed universes, engine-choice stats rollup,
    wall-clock duration, exit status.
``cells.jsonl``
    One line per distinct simulation cell, streamed as results land
    (the parallel scheduler's ``cell_sink`` hook feeds this), so even
    an interrupted run keeps the cells it finished.  Lines are
    deduplicated by the cell's content-addressed cache key.
``report.json``
    The run's user-visible output in machine-readable form: reproduced
    tables + shape checks (``repro all``/``report``), per-experiment
    profiles with metrics rollups, or the bench/chaos payload.

Both JSON files are written with the tempfile + ``os.replace`` pattern
(:func:`repro.harness.store.atomic_write_json`), so a watchdog
interrupt mid-write never leaves truncated JSON.

The run directory root defaults to ``./.repro_runs`` (override with
``REPRO_RUNS_DIR``; disable artifact writing entirely with
``REPRO_NO_RUNS=1``).  ``repro runs list/show/diff/query`` answer from
the SQLite index maintained over these artifacts by
:mod:`repro.harness.index`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import uuid
from contextlib import contextmanager
from typing import IO, Iterator, Optional, Sequence

from repro.harness.store import atomic_write_json, model_epoch
from repro.obs.metrics import new_rollup, rollup_add

#: overrides the run-directory root (default ``./.repro_runs``)
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: set (non-empty, not "0") to disable run-artifact writing
NO_RUNS_ENV = "REPRO_NO_RUNS"

DEFAULT_RUNS_DIR = ".repro_runs"

#: bumped on any change to the manifest layout
MANIFEST_SCHEMA = 1

#: bumped on any change to the report envelope
REPORT_SCHEMA = 1


def runs_root() -> str:
    """The configured run-directory root (may not exist yet)."""
    return os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR


def runs_enabled() -> bool:
    return os.environ.get(NO_RUNS_ENV, "") in ("", "0")


class RunsRootError(RuntimeError):
    """The configured run-artifact root cannot be written."""


def ensure_runs_root() -> Optional[str]:
    """Create the run-directory root and prove it writable.

    Long-running commands (the job server) must fail *at startup* with
    an actionable message, not on their first request hours later.
    Returns the root (``None`` with ``REPRO_NO_RUNS`` set); raises
    :class:`RunsRootError` naming ``REPRO_RUNS_DIR`` when the root
    cannot be created or written.
    """
    if not runs_enabled():
        return None
    root = runs_root()
    try:
        os.makedirs(root, exist_ok=True)
        probe = os.path.join(root, f".probe-{os.getpid()}-"
                                   f"{uuid.uuid4().hex[:8]}")
        with open(probe, "w"):
            pass
        os.remove(probe)
    except OSError as exc:
        raise RunsRootError(
            f"run-artifact root {root!r} is not writable ({exc}); "
            f"point {RUNS_DIR_ENV} at a writable directory or disable "
            f"run artifacts with {NO_RUNS_ENV}=1") from exc
    return root


def _utc(ts: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts))


def slug(text: str) -> str:
    """Lowercase alphanumeric tokens joined by ``-``.

    ``'HP Exemplar S-Class[16p]'`` becomes ``hp-exemplar-s-class-16p``
    -- stable, filesystem- and query-friendly cell identifiers.
    """
    tokens: list[str] = []
    current: list[str] = []
    for ch in text.lower():
        if ch.isalnum():
            current.append(ch)
        elif current:
            tokens.append("".join(current))
            current = []
    if current:
        tokens.append("".join(current))
    return "-".join(tokens)


def cell_id(machine: str, job: str) -> str:
    """The queryable cell identifier of one (machine, job) pair."""
    return f"{slug(machine)}/{slug(job)}"


def git_rev() -> Optional[str]:
    """Best-effort HEAD revision (None outside a git work tree)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


class RunWriter:
    """Owns one run directory: manifest, streamed cells, report.

    Concurrent runs are safe: the run id embeds pid + a random
    fragment, and directory creation retries on the (astronomically
    unlikely) collision, so ``-j N`` runs -- or wholly separate
    processes -- always land in distinct directories.
    """

    def __init__(self, command: str, flags: Optional[dict] = None,
                 root: Optional[str] = None,
                 argv: Optional[Sequence[str]] = None):
        self.command = command
        self.flags = dict(flags or {})
        self.argv = list(argv) if argv is not None else None
        self.root = root or runs_root()
        self.started = time.time()
        self.exit_status: Optional[int] = None
        self.finished_path: Optional[str] = None
        self._cells_fh: Optional[IO[str]] = None
        self._n_cells = 0
        self._seen_keys: set[str] = set()
        self._machines: set[str] = set()
        self._workloads: set[str] = set()
        self._seed_offsets: set[int] = set()
        # running engine-stats rollup, folded record by record: a
        # service session streams unbounded cells, so the writer must
        # never retain the records themselves
        self._engine_stats = new_rollup()
        self._report_summary: Optional[dict] = None

        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(self.started))
        while True:
            self.run_id = (f"{stamp}-{os.getpid()}-"
                           f"{uuid.uuid4().hex[:8]}")
            self.directory = os.path.join(self.root, self.run_id)
            try:
                os.makedirs(self.directory, exist_ok=False)
                break
            except FileExistsError:
                continue
        self._write_manifest(status="running")

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _manifest(self, status: str, finished: Optional[float] = None,
                  ) -> dict:
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "command": self.command,
            "argv": self.argv,
            "flags": self.flags,
            "status": status,
            "exit_status": self.exit_status,
            "started": _utc(self.started),
            "finished": None if finished is None else _utc(finished),
            "duration_s": (None if finished is None
                           else round(finished - self.started, 3)),
            "git_rev": git_rev(),
            "model_epoch": model_epoch(),
            "python": sys.version.split()[0],
            "machines": sorted(self._machines),
            "workloads": sorted(self._workloads),
            "seed_offsets": sorted(self._seed_offsets),
            "n_cells": self._n_cells,
            "engine_stats": dict(self._engine_stats),
        }
        if self._report_summary is not None:
            manifest["report"] = self._report_summary
        return manifest

    def _write_manifest(self, status: str,
                        finished: Optional[float] = None) -> None:
        atomic_write_json(
            os.path.join(self.directory, "manifest.json"),
            self._manifest(status, finished), sort_keys=True)

    # ------------------------------------------------------------------
    # cells.jsonl streaming
    # ------------------------------------------------------------------
    def record(self, source: str, rec: dict) -> None:
        """Append one simulation record to ``cells.jsonl``.

        Records carrying a content-addressed cache ``key`` are
        deduplicated on it (the same cell reaches the sink once from
        the worker that computed it and again from every replay that
        read it back); records without a key (bench rows, chaos
        entries) are always written.
        """
        key = rec.get("key")
        if key is not None:
            if key in self._seen_keys:
                return
            self._seen_keys.add(key)
        machine = rec.get("machine", "")
        job = rec.get("job", "")
        line = {
            "seq": self._n_cells,
            "cell": rec.get("cell") or cell_id(machine, job),
            "kind": rec.get("kind", ""),
            "machine": machine,
            "job": job,
            "seconds": rec.get("seconds"),
            "seed_offset": rec.get("seed_offset", 0),
            "source": source,
            "key": key,
            "stats": rec.get("stats") or {},
        }
        if self._cells_fh is None:
            self._cells_fh = open(
                os.path.join(self.directory, "cells.jsonl"), "w",
                encoding="utf-8")
        json.dump(line, self._cells_fh, sort_keys=True,
                  separators=(",", ":"))
        self._cells_fh.write("\n")
        self._cells_fh.flush()
        self._n_cells += 1
        if machine:
            self._machines.add(machine)
        if job:
            self._workloads.add(job)
        self._seed_offsets.add(int(rec.get("seed_offset", 0)))
        rollup_add(self._engine_stats, rec)

    def cell_sink(self, experiment_id: str,
                  records: Sequence[dict]) -> None:
        """A :data:`repro.harness.parallel.CellSink` writing here."""
        for rec in records:
            self.record(experiment_id, rec)

    # ------------------------------------------------------------------
    # report.json
    # ------------------------------------------------------------------
    def write_report(self, results=None, profiles=None,
                     payload: Optional[dict] = None) -> None:
        """Store the run's results in machine-readable form.

        ``results`` is an iterable of
        :class:`~repro.harness.experiment.ExperimentResult`,
        ``profiles`` of
        :class:`~repro.harness.parallel.ExperimentProfile` (each gets
        its :func:`~repro.obs.metrics.rollup_records` rollup attached);
        bench/chaos runs pass their raw ``payload`` dict instead.
        """
        from repro.harness.store import result_to_dict
        from repro.obs.metrics import rollup_records

        report: dict = {
            "schema": REPORT_SCHEMA,
            "run_id": self.run_id,
            "command": self.command,
        }
        if results is not None:
            dicts = [result_to_dict(r) for r in results]
            report["results"] = dicts
            checks = [c for r in dicts for c in r["checks"]]
            self._report_summary = {
                "experiments": len(dicts),
                "checks_passed": sum(1 for c in checks if c["passed"]),
                "checks_total": len(checks),
            }
        if profiles is not None:
            report["profiles"] = [
                {"experiment_id": p.experiment_id,
                 "wall_seconds": round(p.wall_seconds, 4),
                 "cache_hits": p.cache_hits,
                 "cache_misses": p.cache_misses,
                 "rollup": rollup_records(p.metrics)}
                for p in profiles
            ]
        if payload is not None:
            report["payload"] = payload
        atomic_write_json(
            os.path.join(self.directory, "report.json"), report,
            sort_keys=True)

    # ------------------------------------------------------------------
    def finish(self, status: Optional[str] = None) -> str:
        """Finalize the manifest and index the run; returns the dir.

        Idempotent: the scope's error path and normal path can both
        call it without double-indexing.
        """
        if self.finished_path is not None:
            return self.finished_path
        if self._cells_fh is not None:
            self._cells_fh.close()
            self._cells_fh = None
        if status is None:
            status = ("ok" if self.exit_status in (0, None)
                      else "failed")
        self._write_manifest(status, finished=time.time())
        self.finished_path = self.directory
        try:
            from repro.harness import index

            index.index_run_dir(self.directory, root=self.root)
        except Exception as exc:  # the run itself succeeded
            print(f"runs: could not index {self.run_id}: {exc}",
                  file=sys.stderr)
        return self.directory


@contextmanager
def run_scope(command: str, flags: Optional[dict] = None,
              argv: Optional[Sequence[str]] = None,
              ) -> Iterator[Optional[RunWriter]]:
    """The CLI's run-artifact scope.

    Yields a :class:`RunWriter` (or ``None`` with ``REPRO_NO_RUNS``
    set); the command body sets ``writer.exit_status``.  The manifest
    is finalized on every exit path -- ``ok``/``failed`` from the exit
    status, ``error`` when the body raised (including a watchdog's
    KeyboardInterrupt), so crashes stay visible in ``repro runs list``.
    """
    if not runs_enabled():
        yield None
        return
    writer = RunWriter(command, flags, argv=argv)
    try:
        yield writer
    except BaseException:
        writer.finish(status="error")
        raise
    writer.finish()
