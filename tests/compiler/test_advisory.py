"""Tests for the advisory (suggestion) machinery."""


from repro.compiler import (
    AdvisoryKind,
    ArrayRef,
    Assign,
    BinOp,
    Const,
    ForLoop,
    Program,
    VarRef,
    generate_advisories,
    mechanical_fixes_exist,
    parallelize,
    render_advisories,
    terrain_sequential_ir,
    threat_sequential_ir,
)


def v(name):
    return VarRef(name)


def test_paper_programs_have_no_mechanical_fix():
    """The paper's conclusion: "It is unreasonable to expect a compiler
    to ... automatically develop an alternative algorithm"."""
    for prog in (threat_sequential_ir(), terrain_sequential_ir()):
        result = parallelize(prog)
        assert not mechanical_fixes_exist(result)
        text = render_advisories(result)
        assert "no mechanical transformation applies" in text


def test_threat_advisories_name_the_counter():
    result = parallelize(threat_sequential_ir())
    advisories = generate_advisories(result)
    counter = [a for a in advisories if "num_intervals" in a.message]
    assert counter
    assert all(a.kind == AdvisoryKind.RESTRUCTURING for a in counter)
    assert any("Program 2" in a.message for a in counter)


def test_while_loop_advisory_is_inherent():
    result = parallelize(threat_sequential_ir())
    advisories = generate_advisories(result)
    whiles = [a for a in advisories if "while" in a.loop_label]
    assert whiles
    assert all(a.kind == AdvisoryKind.INHERENT for a in whiles)


def test_distance_dependence_gets_mechanical_advisory():
    # a[i] = a[i-1]: a wavefront; skewing/pipelining is a known remedy
    loop = ForLoop(var="i", lower=Const(0), upper=v("n"), body=(
        Assign(ArrayRef("a", (v("i"),)),
               ArrayRef("a", (BinOp("-", v("i"), Const(1)),))),))
    prog = Program("wavefront", ("n", "a"), (loop,))
    result = parallelize(prog)
    advisories = generate_advisories(result)
    assert advisories
    assert all(a.kind == AdvisoryKind.MECHANICAL for a in advisories)
    assert mechanical_fixes_exist(result)


def test_parallelized_program_has_no_advisories():
    loop = ForLoop(var="i", lower=Const(0), upper=v("n"), body=(
        Assign(ArrayRef("a", (v("i"),)), Const(0)),))
    result = parallelize(Program("doall", ("n", "a"), (loop,)))
    assert generate_advisories(result) == []
    assert not mechanical_fixes_exist(result)
    assert "nothing to suggest" in render_advisories(result)


def test_render_advisories_lists_every_failing_loop():
    result = parallelize(terrain_sequential_ir())
    text = render_advisories(result)
    failing = [r for r in result.reports if not r.parallelized]
    # every failing loop label appears at least once
    for r in failing:
        assert r.label in text
