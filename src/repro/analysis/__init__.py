"""Deterministic race and sync-hazard detection for simulated programs.

The machine models execute :class:`~repro.workload.task.Job` programs
whose phases carry :class:`~repro.workload.ops.SharedAccess` records;
this package turns those records into verdicts:

* :mod:`repro.analysis.hb` builds the happens-before structure of a
  job (fork/join region barriers + per-thread program order + lockset
  mutual exclusion) and reports conflicting concurrent accesses,
  through two independent extractors that mirror the pure-DES and
  cohort execution paths -- the engines must agree.
* :mod:`repro.analysis.facts` reuses the compiler's dependence
  analysis (:mod:`repro.compiler.dependence`) to suppress false
  positives on accesses whose subscripts provably separate iterations.
* :mod:`repro.analysis.monitor` hooks the live DES sync primitives
  (full/empty cells, barriers) for the dynamic hazards a static job
  walk cannot see: write-to-full overwrites, stuck readers/writers,
  barrier party mismatches.
* :mod:`repro.analysis.fixtures` ships intentionally buggy variants
  (dropped lock, off-by-one chunk overlap, skipped ``writeef``,
  barrier party mismatch) proving the detector catches what the
  output validators miss.
* :mod:`repro.analysis.race` drives ``repro race`` over the
  experiment registry and emits the schema-versioned JSON report.
"""

from repro.analysis.hb import (
    analyze_job,
    analyze_job_both,
    current_engine,
    verify_engine_parity,
)
from repro.analysis.monitor import SyncMonitor, monitoring
from repro.analysis.report import (
    Finding,
    JobReport,
    RACE_REPORT_SCHEMA,
    render_report,
    report_to_dict,
)

__all__ = [
    "Finding",
    "JobReport",
    "RACE_REPORT_SCHEMA",
    "SyncMonitor",
    "analyze_job",
    "analyze_job_both",
    "current_engine",
    "monitoring",
    "render_report",
    "report_to_dict",
    "verify_engine_parity",
]
