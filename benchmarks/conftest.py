"""Shared fixtures for the table/figure benchmarks.

The benchmark kernels (real Threat Analysis / Terrain Masking runs)
execute once per session: every bench file draws from the same
session-scoped ``data`` fixture, which aliases the process-wide
``default_data`` cache so nothing downstream re-triggers kernel runs.
Simulated seconds additionally persist in the on-disk result cache
(``.repro_cache/``; set ``REPRO_NO_CACHE=1`` to measure true cold
runs).

The cycle-accurate and full-sweep benches are marked ``slow``; run
``pytest benchmarks/ -m "not slow" --benchmark-only`` for a quick
smoke tier, or drop the marker filter for the full suite.  Use ``-s``
to see the reproduced tables next to the paper's values.
"""

from __future__ import annotations

import pytest

from repro.harness import BenchmarkData, default_data


@pytest.fixture(scope="session")
def data() -> BenchmarkData:
    # no-arg call: shares the lru_cache entry used by run_experiment()
    return default_data()
