"""Golden-number regression tests.

These freeze the headline simulated values at the default kernel
scales.  They are deliberately tighter than the paper-shape checks:
an accidental change to any model constant or mechanism that moves a
headline number by more than a few percent should fail loudly here,
not silently shift EXPERIMENTS.md.

If you *intend* to re-calibrate, update these numbers together with
harness/calibration.py and the regenerated EXPERIMENTS.md.
"""

import pytest

from repro.harness import BenchmarkData


@pytest.fixture(scope="module")
def data():
    # the default calibration scales
    return BenchmarkData(threat_scale=0.02, terrain_scale=0.05)


GOLDEN = {
    # (job, machine) -> expected seconds at default scales
    "threat-seq-alpha": 188.7,
    "threat-seq-ppro": 465.0,
    "threat-seq-exemplar": 348.4,
    "threat-seq-mta": 2561.0,
    "threat-mt-mta1": 80.6,
    "threat-mt-mta2": 44.7,
    "terrain-seq-alpha": 146.2,
    "terrain-seq-exemplar": 223.0,
    "terrain-seq-mta": 1027.0,
    "terrain-fg-mta1": 48.7,
    "terrain-fg-mta2": 34.8,
}


def measured(data):
    tj = data.threat_sequential_job()
    cj = data.threat_chunked_job(256, thread_kind="hw")
    sj = data.terrain_sequential_job()
    fj = data.terrain_finegrained_job()
    return {
        "threat-seq-alpha": data.alpha(tj),
        "threat-seq-ppro": data.ppro(1, tj),
        "threat-seq-exemplar": data.exemplar(1, tj),
        "threat-seq-mta": data.run_mta(1, tj),
        "threat-mt-mta1": data.run_mta(1, cj),
        "threat-mt-mta2": data.run_mta(2, cj),
        "terrain-seq-alpha": data.alpha(sj),
        "terrain-seq-exemplar": data.exemplar(1, sj),
        "terrain-seq-mta": data.run_mta(1, sj),
        "terrain-fg-mta1": data.run_mta(1, fj),
        "terrain-fg-mta2": data.run_mta(2, fj),
    }


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_golden_value(key, data):
    got = measured(data)[key]
    assert got == pytest.approx(GOLDEN[key], rel=0.03), (
        f"{key}: measured {got:.1f}s vs golden {GOLDEN[key]:.1f}s -- "
        f"if this change is an intentional re-calibration, update "
        f"tests/harness/test_golden.py and EXPERIMENTS.md together")
