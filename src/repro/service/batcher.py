"""Dedupe + batch pending simulation cells into cohort engine runs.

The batcher is the seam between the asyncio front half of the service
(connections, request parsing, response streaming) and the synchronous
simulation engine.  Three layers of work avoidance, in order:

1. **completed dedupe** -- a cell whose content-addressed key is
   already in the persistent result cache is answered immediately,
   without queueing (``dedupe_cached``);
2. **in-flight dedupe** -- a cell whose key is already pending or
   executing attaches to the existing :class:`asyncio.Future` instead
   of queueing a second engine run: *one engine run, N result streams*
   (``dedupe_inflight``);
3. **batching** -- remaining cells accumulate for a short window (or
   until ``max_batch``) and dispatch as one
   :func:`repro.harness.parallel.run_cells` call, which orders them
   largest-first and can fan them over the crash-salvaging process
   pool, exactly like a ``repro all -j`` sweep (``batches``,
   ``batched_cells``, ``engine_cells``).

Only *compatible* cells share a batch: ``run_cells`` executes one
(threat_scale, terrain_scale) universe per call, so pending cells are
grouped by their scale pair and each group dispatches separately.

The engine side runs on a single dedicated thread (one batch at a
time; parallelism happens *inside* a batch via the pool), and results
hop back to the event loop with ``call_soon_threadsafe`` -- each
record resolves its future the moment it lands, so subscribers stream
per-cell results while the rest of the batch is still running.

Futures are shared and never cancelled by subscriber disconnects: a
client that goes away mid-stream merely stops reading, while the batch
-- and every other subscriber's stream -- survives.

Faulted cells (a request with a fault plan) bypass the result cache by
design (see ``repro.faults.chaos``) but still get in-flight dedupe and
the same engine thread; their records carry the realized fault
schedule.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
from typing import Callable, Optional

from repro.faults.inject import run_faulted_conventional, run_faulted_mta
from repro.harness import parallel, store
from repro.harness.runner import default_data
from repro.obs.metrics import ServiceCounters

#: (threat_scale, terrain_scale) -- the compatibility class of a batch
Scales = tuple[float, float]


class CellBatcher:
    """Owns the pending queues, in-flight table and the engine thread."""

    def __init__(self, *, jobs: int = 1, batch_window: float = 0.05,
                 max_batch: int = 64,
                 counters: Optional[ServiceCounters] = None,
                 on_record: Optional[Callable[[dict], None]] = None):
        self.jobs = max(1, int(jobs))
        self.batch_window = batch_window
        self.max_batch = max(1, int(max_batch))
        self.counters = counters if counters is not None \
            else ServiceCounters()
        #: called on the event loop with every record the engine
        #: produced (not cache hits) -- the run-store persistence hook
        self.on_record = on_record
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: key -> shared future; holds pending *and* executing cells
        self._inflight: dict[str, asyncio.Future] = {}
        #: healthy cells waiting for the next batch, per scale pair
        self._pending: dict[Scales, list[dict]] = {}
        self._kick: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._engine = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine")
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._kick = asyncio.Event()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-batcher")

    async def drain(self) -> None:
        """Finish everything in flight, then stop the engine thread."""
        self._closed = True
        if self._kick is not None:
            self._kick.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._inflight:
            await asyncio.gather(
                *[asyncio.shield(f) for f in self._inflight.values()],
                return_exceptions=True)
        self._engine.shutdown(wait=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, cell: dict) -> asyncio.Future:
        """Queue one cell descriptor; returns its (shared) future.

        Must be called on the event loop.  The future resolves to the
        cell's simulation record.  Callers must not cancel it -- it
        may be shared; await it through ``asyncio.shield`` if a caller
        can itself be cancelled.
        """
        assert self._loop is not None, "batcher not started"
        if self._closed:
            raise RuntimeError("service is shutting down")
        self.counters.cells += 1
        key = cell["key"]
        fut = self._inflight.get(key)
        if fut is not None:
            self.counters.dedupe_inflight += 1
            return fut
        fut = self._loop.create_future()
        if "fault_plan" in cell:
            # uncached by design; one engine job per distinct key
            self._inflight[key] = fut
            self.counters.faulted_cells += 1
            self._loop.run_in_executor(
                self._engine, self._run_faulted, cell)
            return fut
        cache = store.active_cache()
        entry = cache.get(key) if cache is not None else None
        if entry is not None:
            self.counters.dedupe_cached += 1
            fut.set_result(store.entry_to_record(
                key, entry, cell["seed_offset"], kind=cell["kind"]))
            return fut
        self._inflight[key] = fut
        scales = (cell["threat_scale"], cell["terrain_scale"])
        self._pending.setdefault(scales, []).append(cell)
        assert self._kick is not None
        self._kick.set()
        return fut

    def _pending_count(self) -> int:
        return sum(len(v) for v in self._pending.values())

    # ------------------------------------------------------------------
    # batching (event loop side)
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._kick is not None
        while True:
            await self._kick.wait()
            self._kick.clear()
            if not self._pending_count():
                if self._closed:
                    return
                continue
            # batch window: let concurrent requests coalesce, unless
            # a batch is already full or we are draining
            if (self._pending_count() < self.max_batch
                    and not self._closed and self.batch_window > 0):
                await asyncio.sleep(self.batch_window)
            while self._pending_count():
                scales = next(iter(self._pending))
                group = self._pending[scales]
                batch = group[:self.max_batch]
                del group[:len(batch)]
                if not group:
                    del self._pending[scales]
                self.counters.batches += 1
                self.counters.batched_cells += len(batch)
                # one batch at a time: the executor has one thread,
                # and awaiting here keeps the window accumulating for
                # the *next* batch while this one runs
                assert self._loop is not None
                await self._loop.run_in_executor(
                    self._engine, self._run_batch, scales, batch)
            if self._closed and not self._pending_count():
                return

    # ------------------------------------------------------------------
    # engine thread side
    # ------------------------------------------------------------------
    def _run_batch(self, scales: Scales, batch: list[dict]) -> None:
        assert self._loop is not None
        loop = self._loop

        def emit(record: dict) -> None:
            loop.call_soon_threadsafe(self._settle, record["key"],
                                      record, None)

        try:
            parallel.run_cells(
                batch, threat_scale=scales[0], terrain_scale=scales[1],
                jobs=self.jobs, on_record=emit, trim_logs=True)
        except BaseException as exc:  # noqa: BLE001 -- fail the batch
            for cell in batch:
                loop.call_soon_threadsafe(
                    self._settle, cell["key"], None, exc)

    def _run_faulted(self, cell: dict) -> None:
        assert self._loop is not None
        loop = self._loop
        try:
            data = default_data(cell["threat_scale"],
                                cell["terrain_scale"]) \
                .with_seed_offset(cell["seed_offset"])
            job = data.job_from_recipe(cell["job_recipe"])
            t0 = time.perf_counter()
            if cell["kind"] == "mta":
                run = run_faulted_mta(
                    cell["spec"], job, cell["fault_plan"],
                    slices_per_phase=cell["slices_per_phase"])
            else:
                run = run_faulted_conventional(
                    cell["spec"], job, cell["fault_plan"],
                    slices_per_phase=cell["slices_per_phase"])
            del data.metrics_log[:]
            record = {
                "key": cell["key"],
                "kind": "faulted-" + cell["kind"],
                "machine": run.machine,
                "job": run.job,
                "seconds": run.seconds,
                "seed_offset": cell["seed_offset"],
                "stats": dict(run.stats,
                              service_wall=time.perf_counter() - t0),
                "fault_schedule": [f.to_payload() for f in run.schedule],
                "fault_applied": [f.kind for f in run.applied],
            }
        except BaseException as exc:  # noqa: BLE001
            loop.call_soon_threadsafe(self._settle, cell["key"], None,
                                      exc)
            return
        loop.call_soon_threadsafe(self._settle, cell["key"], record,
                                  None)

    # ------------------------------------------------------------------
    # settlement (event loop side)
    # ------------------------------------------------------------------
    def _settle(self, key: str, record: Optional[dict],
                exc: Optional[BaseException]) -> None:
        fut = self._inflight.pop(key, None)
        if record is not None:
            self.counters.engine_cells += 1
            if self.on_record is not None:
                self.on_record(record)
        if fut is None or fut.done():
            return
        if exc is not None:
            fut.set_exception(exc)
        else:
            fut.set_result(record)
