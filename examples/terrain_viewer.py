#!/usr/bin/env python3
"""Visualize a Terrain Masking solution as ASCII art.

Renders the terrain, the threat laydown, and the computed masking
altitudes side by side -- shadows (high safe altitude) show up behind
ridges as seen from each threat, which is a nice eyeball check of the
line-of-sight propagation.

    python examples/terrain_viewer.py
"""

import numpy as np

from repro.c3i import terrain as TE

#: darkness ramp for elevation / masking rendering
RAMP = " .:-=+*#%@"


def render_grid(values: np.ndarray, step: int) -> list[str]:
    """Downsample a float grid to ASCII (inf rendered as ' ')."""
    finite = np.isfinite(values)
    lo = values[finite].min() if finite.any() else 0.0
    hi = values[finite].max() if finite.any() else 1.0
    span = max(hi - lo, 1e-9)
    lines = []
    for x in range(0, values.shape[0], step):
        row = []
        for y in range(0, values.shape[1], step):
            v = values[x, y]
            if not np.isfinite(v):
                row.append(" ")
            else:
                idx = int((v - lo) / span * (len(RAMP) - 1))
                row.append(RAMP[idx])
        lines.append("".join(row))
    return lines


def main() -> None:
    scenario = TE.make_scenario(0, scale=0.05)
    result = TE.run_sequential(scenario)
    n = scenario.grid_n
    step = max(1, n // 56)

    terrain_img = render_grid(scenario.terrain, step)
    # show masking only where constrained; blanks mean "fly anywhere"
    masking_img = render_grid(result.masking, step)

    # overlay threat positions on the terrain image
    overlay = [list(line) for line in terrain_img]
    for t in scenario.threats:
        x, y = t.x // step, t.y // step
        if x < len(overlay) and y < len(overlay[0]):
            overlay[x][y] = "O"
    overlay = ["".join(line) for line in overlay]

    print(f"Terrain Masking, scenario 0 ({n}x{n} grid, "
          f"{scenario.n_threats} threats 'O')")
    print()
    header = f"{'terrain + threats':<60}{'masking altitude':<60}"
    print(header)
    print("-" * min(len(header), 118))
    for a, b in zip(overlay, masking_img):
        print(f"{a:<60}{b:<60}")
    print()
    covered = np.isfinite(result.masking).mean()
    print(f"{covered:.0%} of the terrain is constrained; darker = higher "
          f"(safe) altitude, blank = unconstrained.")
    print("Shadows stretch away from each 'O' behind high ground -- the "
          "wavefront LOS propagation at work.")


if __name__ == "__main__":
    main()
