"""Intentionally buggy fixtures proving the detector detects.

Each fixture is a distilled version of a bug class the C3I programs
could plausibly ship with -- the exact mistakes the paper's programming
model makes easy to avoid but not impossible to write -- and the race
CI job requires every one of them to be flagged with its expected
hazard class(es) under **both** engine extractions:

* ``chunk-overlap``   -- Program-2-style static chunking with an
  off-by-one in the chunk bounds: adjacent chunks both write the
  boundary element (``data-race``).
* ``dropped-lock``    -- Program-4-style blocked merge where one work
  item forgets the block lock (``lock-discipline``).
* ``skipped-writeef`` -- a producer/consumer pipeline over full/empty
  cells where the producer skips one ``writeef``: the consumer parks
  forever on the empty cell (``read-from-empty`` + ``deadlock``).
* ``barrier-mismatch`` -- a barrier sized for four parties that only
  three threads ever reach (``barrier-mismatch`` + ``deadlock``).
* ``overwrite-full``  -- a producer resetting cells with ``writeff``
  while one still holds an unconsumed value (``write-to-full``).
* ``mesh-missync``    -- a generated taskbench mesh whose tasks write
  their wrap-around neighbour's element in the same level (a forgotten
  halo exchange): same-region writes overlap (``data-race``).

The static fixtures are plain :class:`~repro.workload.task.Job`
values and go through :func:`repro.analysis.hb.analyze_job`; the
dynamic ones run a real DES simulation under
:func:`repro.analysis.monitor.monitoring`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.hb import analyze_job
from repro.analysis.monitor import monitoring
from repro.analysis.report import Finding
from repro.taskbench import missync_mesh_job
from repro.workload.builder import make_phase
from repro.workload.ops import OpCounts, read_of, write_of
from repro.workload.task import (
    Compute,
    Critical,
    Job,
    ParallelRegion,
    SerialStep,
    ThreadProgram,
    WorkItem,
    WorkQueueRegion,
)


def _phase(name: str, accesses=()):
    return make_phase(name, OpCounts(ialu=100, load=60, store=30),
                      accesses=tuple(accesses))


# ----------------------------------------------------------------------
# static fixtures: buggy jobs
# ----------------------------------------------------------------------

def chunk_overlap_job(n_elems: int = 96, n_chunks: int = 8) -> Job:
    """Static chunking with the classic off-by-one: each chunk's upper
    bound is ``(i + 1) * size`` *inclusive*, so chunk ``i`` and chunk
    ``i+1`` both write the boundary element."""
    size = n_elems // n_chunks
    threads = []
    for i in range(n_chunks):
        first = i * size
        last = min(n_elems - 1, (i + 1) * size)  # BUG: should be -1
        threads.append(ThreadProgram(f"chunk{i}", (Compute(_phase(
            f"scan{i}",
            (read_of("threats", first, last),
             write_of("trajectory", first, last)))),)))
    return Job("fixture-chunk-overlap", (
        SerialStep(_phase("setup", (write_of("threats", 0, n_elems - 1),))),
        ParallelRegion(tuple(threads)),
    ))


def dropped_lock_job(n_items: int = 6, bad_item: int = 3) -> Job:
    """Blocked-merge work queue where one item skips the block lock."""
    if not 0 <= bad_item < n_items:
        raise ValueError("bad_item out of range")
    items = []
    for i in range(n_items):
        bid = i % 2  # two masking blocks, shared across items
        merge = _phase(f"merge{i}", (read_of("masking", bid, bid),
                                     write_of("masking", bid, bid)))
        prop = Compute(_phase(f"propagate{i}", (read_of("terrain"),)))
        if i == bad_item:
            items.append(WorkItem(f"threat{i}",
                                  (prop, Compute(merge))))  # BUG
        else:
            items.append(WorkItem(f"threat{i}",
                                  (prop, Critical(f"block{bid}", merge))))
    return Job("fixture-dropped-lock",
               (WorkQueueRegion(tuple(items), n_threads=3),))


# ----------------------------------------------------------------------
# dynamic fixtures: buggy simulations
# ----------------------------------------------------------------------

def _run_dynamic(name: str, build: Callable) -> list[Finding]:
    """Run a buggy simulation under a monitor; a deadlock becomes a
    finding instead of an exception."""
    from repro.des.errors import SimulationDeadlock
    from repro.des.simulator import Simulator

    sim = Simulator()
    with monitoring(sim) as mon:
        processes = build(sim)
        try:
            sim.run_all(*processes)
        except SimulationDeadlock as exc:
            headline = str(exc).splitlines()[0]
            mon_findings = mon.finish(job=name)
            return sorted(
                mon_findings + [Finding(
                    hazard="deadlock", job=name, region="run",
                    location="simulation", units=("simulation",),
                    detail=headline)],
                key=lambda f: f.key)
    return mon.finish(job=name)


def skipped_writeef_findings() -> list[Finding]:
    """Producer fills only ``n - 1`` of ``n`` cells; the consumer's
    final ``readfe`` never completes."""
    from repro.des.sync import FullEmptyCell

    def build(sim):
        n = 4
        cells = [FullEmptyCell(sim, name=f"pipe[{i}]") for i in range(n)]

        def producer():
            for i in range(n):
                yield sim.timeout(1.0)
                if i == n - 1:
                    continue  # BUG: the last writeef is skipped
                yield cells[i].write_ef(i)

        def consumer():
            for i in range(n):
                yield cells[i].read_fe()

        return [sim.process(producer(), name="producer"),
                sim.process(consumer(), name="consumer")]

    return _run_dynamic("fixture-skipped-writeef", build)


def barrier_mismatch_findings() -> list[Finding]:
    """A four-party barrier that only three workers ever reach."""
    from repro.des.sync import SimBarrier

    def build(sim):
        bar = SimBarrier(sim, parties=4, name="phase-barrier")  # BUG: 4

        def worker(k):
            yield sim.timeout(float(k))
            yield bar.wait()

        return [sim.process(worker(k), name=f"worker{k}")
                for k in range(3)]

    return _run_dynamic("fixture-barrier-mismatch", build)


def overwrite_full_findings() -> list[Finding]:
    """A producer that resets cells with the unconditional ``writeff``
    while one still holds an unconsumed value."""
    from repro.des.sync import FullEmptyCell

    def build(sim):
        cells = [FullEmptyCell(sim, name=f"slot[{i}]") for i in range(2)]

        def producer():
            for c in cells:
                yield c.write_ef(1)
            yield sim.timeout(1.0)
            # BUG: generation reset with writeff; slot[1] was never read
            for c in cells:
                yield c.write_ff(2)

        def consumer():
            yield sim.timeout(0.5)
            yield cells[0].read_fe()

        return [sim.process(producer(), name="producer"),
                sim.process(consumer(), name="consumer")]

    return _run_dynamic("fixture-overwrite-full", build)


# ----------------------------------------------------------------------
# the fixture registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Fixture:
    """A named buggy scenario and the hazard classes it must trip."""

    name: str
    description: str
    expected: frozenset[str]
    job: Optional[Callable[[], Job]] = None          # static
    run: Optional[Callable[[], list[Finding]]] = None  # dynamic

    def findings(self, engine: Optional[str] = None) -> list[Finding]:
        if self.job is not None:
            return list(analyze_job(self.job(), engine).findings)
        assert self.run is not None
        return self.run()

    def check(self, engine: Optional[str] = None
              ) -> tuple[bool, list[Finding]]:
        """``(flagged, findings)``: flagged iff every expected hazard
        class appeared and nothing unexpected did."""
        fs = self.findings(engine)
        seen = {f.hazard for f in fs}
        return seen == set(self.expected), fs


FIXTURES: tuple[Fixture, ...] = (
    Fixture("chunk-overlap",
            "off-by-one chunk bounds: adjacent chunks write the same "
            "boundary element",
            frozenset({"data-race"}), job=chunk_overlap_job),
    Fixture("dropped-lock",
            "one work item merges into a shared block without the "
            "block lock",
            frozenset({"lock-discipline"}), job=dropped_lock_job),
    Fixture("skipped-writeef",
            "producer skips the final writeef; consumer parks on an "
            "empty cell",
            frozenset({"read-from-empty", "deadlock"}),
            run=skipped_writeef_findings),
    Fixture("barrier-mismatch",
            "barrier sized for four parties; only three arrive",
            frozenset({"barrier-mismatch", "deadlock"}),
            run=barrier_mismatch_findings),
    Fixture("overwrite-full",
            "unconditional writeff clobbers an unconsumed full cell",
            frozenset({"write-to-full"}),
            run=overwrite_full_findings),
    Fixture("mesh-missync",
            "taskbench mesh tasks write their wrap-around neighbour's "
            "element without a barrier (forgotten halo exchange)",
            frozenset({"data-race"}), job=missync_mesh_job),
)


def fixture_by_name(name: str) -> Fixture:
    for fx in FIXTURES:
        if fx.name == name:
            return fx
    raise KeyError(f"unknown fixture {name!r}; "
                   f"have {[f.name for f in FIXTURES]}")
